// Extra bench — the pet::svc estimation service under load (docs/service.md).
//
// Four tables:
//   (1) "load": sustained request throughput and client-observed latency
//       percentiles (p50/p99) against >= 1k concurrently registered
//       populations, driven by parallel client threads through the full
//       frame-encode -> submit -> pool -> frame-decode path.  Timing rows:
//       they describe this machine, not the protocol, and are NOT golden
//       (stdout only, unbound from the artifact).
//   (2) "service observability": the registry's per-population fold right
//       after the load phase — request/round/slot totals and slot-unit
//       latency quantiles.  Deterministic at any --threads, so it IS bound
//       to the artifact and golden-gated.
//   (3) "overload": a deliberate burst far past the admission cap; reports
//       how much was shed with typed RESOURCE_EXHAUSTED frames vs served.
//       The served/shed split is timing-dependent: stdout only.
//   (4) "degradation": the deterministic deadline ladder — how the service
//       trades rounds for deadline slack, when it flags degraded, and when
//       it refuses with DEADLINE_EXCEEDED.  Same seed => byte-identical
//       rows at any --threads.
//   (5) "scale: 10k populations": the sharded registry + channel arenas at
//       10240 concurrently registered populations, one estimate each.  The
//       fold cells are deterministic (golden); timing goes to stdout.
//   (6) "hot/cold isolation": one hammered population vs a fixed cold
//       request script at shards=4 — the tentpole's p99-isolation claim.
//       The cold fold is deterministic (golden); the baseline-vs-contended
//       wall p99 ratio is machine profile (stdout).
//   (7) "result cache": serial repeated-seed script against the bounded
//       LRU — hits/misses/entries and the cache-invariant fold are golden;
//       the hit-vs-miss wall p50 speedup is stdout.
//
// The artifact also carries the obs "metrics" member (benchdiff-ignored),
// which includes the pet.svc.pop.* / pet.svc.conn.* bundles for obscheck.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "harness/options.hpp"
#include "harness/report.hpp"
#include "harness/table.hpp"
#include "obs/instruments.hpp"
#include "rng/prng.hpp"
#include "service/messages.hpp"
#include "service/registry.hpp"
#include "service/service.hpp"
#include "service/shard.hpp"
#include "stats/accuracy.hpp"

namespace {

using namespace pet;

[[nodiscard]] double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto index = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1));
  return sorted[index];
}

[[nodiscard]] svc::Frame estimate_request(std::uint64_t population,
                                          std::uint64_t seed,
                                          std::uint64_t deadline_slots) {
  svc::EstimateRequest request;
  request.population_id = population;
  request.seed = seed;
  request.deadline_slots = deadline_slots;
  return svc::make_request(svc::CommandId::kEstimate, svc::encode(request));
}

/// Quantile over the slot-unit latency histogram: upper bound of the bucket
/// holding quantile q (">B" for the overflow bucket, "-" when empty).
[[nodiscard]] std::string slot_quantile(
    const std::array<std::uint64_t, svc::PopulationStats::kLatencyBuckets>&
        counts,
    double q) {
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return "-";
  const double target = q * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (static_cast<double>(seen) >= target) {
      if (i < obs::kSvcLatencySlotBounds.size()) {
        return bench::TablePrinter::num(obs::kSvcLatencySlotBounds[i], 0);
      }
      return ">" +
             bench::TablePrinter::num(obs::kSvcLatencySlotBounds.back(), 0);
    }
  }
  return "-";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pet;
  auto options = bench::BenchOptions::parse(
      argc, argv,
      "pet::svc service engine under load: throughput/latency at >= 1k "
      "populations, overload shedding, deterministic deadline degradation.");
  bench::BenchSession session(options, "service_bench");

  // --quick (runs <= 30) shrinks the load phase, not the population count:
  // the 1k-population floor is the point of the bench.
  const bool quick = options.runs <= 30;
  const std::uint64_t populations = 1024;
  const std::uint64_t tags_per_population = quick ? 1000 : 2000;
  const std::uint64_t requests = quick ? 1024 : 8192;
  const unsigned clients =
      std::max(2u, std::min(8u, runtime::ThreadPool::hardware_threads()));

  svc::ServiceConfig config;
  config.max_inflight = 256;
  config.worker_threads = options.threads;
  svc::EstimationService service(config);

  // --- Registration: the 1k-population arena --------------------------------
  const auto register_start = std::chrono::steady_clock::now();
  for (std::uint64_t id = 0; id < populations; ++id) {
    svc::RegisterRequest request;
    request.population_id = id;
    request.tag_count = tags_per_population;
    request.population_seed = rng::derive_seed(options.seed, id);
    const svc::Frame response = service.handle(svc::make_request(
        svc::CommandId::kRegister, svc::encode(request)));
    if (response.status != 0) {
      std::fprintf(stderr, "service_bench: register %llu failed\n",
                   static_cast<unsigned long long>(id));
      return 1;
    }
  }
  const double register_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    register_start)
          .count();

  // --- Load: parallel clients, strict request-response ----------------------
  std::vector<std::vector<double>> latencies(clients);
  const auto load_start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> workers;
    workers.reserve(clients);
    for (unsigned c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        std::vector<double>& mine = latencies[c];
        mine.reserve(requests / clients + 1);
        for (std::uint64_t i = c; i < requests; i += clients) {
          const svc::Frame request = estimate_request(
              i % populations, rng::derive_seed(options.seed, 10000 + i),
              /*deadline_slots=*/0);
          const auto start = std::chrono::steady_clock::now();
          const svc::Frame response = service.submit(request).get();
          const auto elapsed = std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - start);
          if (response.status == 0) mine.push_back(elapsed.count());
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
  }
  const double load_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    load_start)
          .count();

  std::vector<double> all_latencies;
  for (const std::vector<double>& part : latencies) {
    all_latencies.insert(all_latencies.end(), part.begin(), part.end());
  }
  std::sort(all_latencies.begin(), all_latencies.end());
  const std::uint64_t served = all_latencies.size();

  // Timing table: stdout only.  Binding it would make the artifact diff
  // machine-dependent.
  bench::TablePrinter load_table(
      "service load (timing: NOT golden)",
      {"populations", "clients", "requests", "req/s", "p50 us", "p99 us",
       "register s"},
      options.csv);
  load_table.add_row({bench::TablePrinter::num(populations),
                      bench::TablePrinter::num(std::uint64_t{clients}),
                      bench::TablePrinter::num(served),
                      bench::TablePrinter::num(
                          static_cast<double>(served) / load_seconds, 1),
                      bench::TablePrinter::num(percentile(all_latencies, 0.50),
                                               1),
                      bench::TablePrinter::num(percentile(all_latencies, 0.99),
                                               1),
                      bench::TablePrinter::num(register_seconds, 2)});
  load_table.print();

  // --- Service observability fold (deterministic) ---------------------------
  // Snapshot the registry's per-population fold now: the load phase is a
  // fixed seeded request script, so these totals are byte-identical at any
  // --threads.  The overload burst below is timing-dependent and must not
  // leak into this table — hence the snapshot happens first.
  {
    const svc::PopulationStatsSnapshot fold = service.registry().fold_stats();
    bench::TablePrinter obs_table(
        "service observability fold (deterministic; post-load snapshot)",
        {"requests", "ok", "degraded", "query slots", "rounds",
         "p50 slots", "p99 slots"},
        options.csv);
    obs_table.bind(&session.report());
    obs_table.add_row({bench::TablePrinter::num(fold.requests),
                       bench::TablePrinter::num(fold.ok),
                       bench::TablePrinter::num(fold.degraded),
                       bench::TablePrinter::num(fold.query_slots),
                       bench::TablePrinter::num(fold.rounds),
                       slot_quantile(fold.latency_slots, 0.50),
                       slot_quantile(fold.latency_slots, 0.99)});
    obs_table.print();
  }

  // --- Overload: burst far past the admission cap ---------------------------
  const std::uint64_t burst = config.max_inflight * 4;
  std::vector<std::future<svc::Frame>> pending;
  pending.reserve(burst);
  for (std::uint64_t i = 0; i < burst; ++i) {
    pending.push_back(service.submit(estimate_request(
        i % populations, rng::derive_seed(options.seed, 20000 + i), 0)));
  }
  std::uint64_t burst_ok = 0, burst_shed = 0;
  for (std::future<svc::Frame>& future : pending) {
    const svc::Frame response = future.get();
    if (response.status == 0) {
      ++burst_ok;
    } else if (static_cast<svc::StatusCode>(response.status) ==
               svc::StatusCode::kResourceExhausted) {
      ++burst_shed;
    }
  }
  // Timing-dependent served/shed split: stdout only, like the load table.
  bench::TablePrinter overload_table(
      "overload burst (timing-dependent split; every request answered)",
      {"burst", "served", "shed"}, options.csv);
  overload_table.add_row({bench::TablePrinter::num(burst),
                          bench::TablePrinter::num(burst_ok),
                          bench::TablePrinter::num(burst_shed)});
  overload_table.print();

  // --- Degradation ladder (deterministic) -----------------------------------
  bench::TablePrinter degrade_table(
      "deadline degradation ladder (deterministic; robust, eps=0.1, "
      "delta=0.05)",
      {"deadline slots", "status", "rounds", "planned", "degraded",
       "truncated", "nhat/n", "rel half-width"},
      options.csv);
  degrade_table.bind(&session.report());
  const double true_n = static_cast<double>(tags_per_population);
  for (const std::uint64_t deadline :
       {std::uint64_t{0}, std::uint64_t{4000}, std::uint64_t{2000},
        std::uint64_t{1000}, std::uint64_t{500}, std::uint64_t{250},
        std::uint64_t{120}, std::uint64_t{60}, std::uint64_t{20},
        std::uint64_t{5}}) {
    const svc::Frame response = service.handle(estimate_request(
        0, rng::derive_seed(options.seed, 30000), deadline));
    const auto status = static_cast<svc::StatusCode>(response.status);
    std::string rounds = "-", planned = "-", degraded = "-", truncated = "-",
                accuracy = "-", width = "-";
    if (status == svc::StatusCode::kOk) {
      const auto reply = svc::parse_estimate_reply(response.payload);
      if (!reply) return 1;
      rounds = bench::TablePrinter::num(reply->rounds);
      planned = bench::TablePrinter::num(reply->planned_rounds);
      degraded = reply->degraded != 0 ? "yes" : "no";
      truncated = reply->truncated != 0 ? "yes" : "no";
      accuracy = bench::TablePrinter::num(reply->n_hat / true_n, 4);
      width = bench::TablePrinter::num(
          reply->n_hat > 0.0
              ? (reply->ci_hi - reply->ci_lo) / (2.0 * reply->n_hat)
              : 0.0,
          4);
    }
    degrade_table.add_row({deadline == 0 ? "unlimited"
                                         : bench::TablePrinter::num(deadline),
                           std::string(svc::to_string(status)), rounds,
                           planned, degraded, truncated, accuracy, width});
  }
  degrade_table.print();

  // --- Scale: 10k populations (deterministic fold) --------------------------
  // A fresh service carrying 10240 registered populations — 10x the load
  // arena — with one estimate per population driven through the sharded
  // submit path.  The fold totals are a pure function of the request script
  // (golden); registration and serving rates describe this machine (stdout).
  {
    const std::uint64_t scale_populations = 10240;
    const std::uint64_t scale_tags = quick ? 200 : 1000;
    svc::ServiceConfig scale_config;
    scale_config.max_inflight = 256;
    scale_config.worker_threads = options.threads;
    svc::EstimationService scale_service(scale_config);

    const auto scale_register_start = std::chrono::steady_clock::now();
    for (std::uint64_t id = 0; id < scale_populations; ++id) {
      svc::RegisterRequest request;
      request.population_id = id;
      request.tag_count = scale_tags;
      request.population_seed = rng::derive_seed(options.seed, 40000 + id);
      const svc::Frame response = scale_service.handle(svc::make_request(
          svc::CommandId::kRegister, svc::encode(request)));
      if (response.status != 0) {
        std::fprintf(stderr, "service_bench: scale register %llu failed\n",
                     static_cast<unsigned long long>(id));
        return 1;
      }
    }
    const double scale_register_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      scale_register_start)
            .count();

    const auto scale_load_start = std::chrono::steady_clock::now();
    {
      std::vector<std::thread> workers;
      workers.reserve(clients);
      for (unsigned c = 0; c < clients; ++c) {
        workers.emplace_back([&, c] {
          for (std::uint64_t id = c; id < scale_populations; id += clients) {
            (void)scale_service
                .submit(estimate_request(
                    id, rng::derive_seed(options.seed, 50000 + id), 0))
                .get();
          }
        });
      }
      for (std::thread& worker : workers) worker.join();
    }
    const double scale_load_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      scale_load_start)
            .count();

    const svc::PopulationStatsSnapshot fold =
        scale_service.registry().fold_stats();
    bench::TablePrinter scale_table(
        "scale: 10k populations (deterministic fold)",
        {"populations", "requests", "ok", "query slots", "rounds",
         "p99 slots"},
        options.csv);
    scale_table.bind(&session.report());
    scale_table.add_row({bench::TablePrinter::num(scale_populations),
                         bench::TablePrinter::num(fold.requests),
                         bench::TablePrinter::num(fold.ok),
                         bench::TablePrinter::num(fold.query_slots),
                         bench::TablePrinter::num(fold.rounds),
                         slot_quantile(fold.latency_slots, 0.99)});
    scale_table.print();
    if (!options.quiet) {
      std::fprintf(stderr,
                   "scale: registered 10240 pops in %.2fs, served %llu "
                   "estimates at %.0f req/s (%u shards)\n",
                   scale_register_seconds,
                   static_cast<unsigned long long>(fold.requests),
                   static_cast<double>(fold.requests) / scale_load_seconds,
                   scale_service.shard_count());
    }
  }

  // --- Hot/cold isolation across shards -------------------------------------
  // One population is hammered with fire-and-forget load while a fixed cold
  // request script runs against populations on the other shards.  Per-shard
  // admission means the hammer can only exhaust its own shard's budget, so
  // the cold script's fold (golden) and its wall p99 (stdout; the tentpole's
  // "within 2x" claim) stay insulated.
  {
    const unsigned iso_shards = 4;
    svc::ServiceConfig iso_config;
    iso_config.shards = iso_shards;
    iso_config.worker_threads = 4;
    iso_config.max_inflight = 64;
    svc::EstimationService iso_service(iso_config);

    const std::uint64_t hot = 1;  // large population: expensive estimates
    const unsigned hot_shard = svc::shard_of(hot, iso_shards);
    std::vector<std::uint64_t> cold_ids;
    for (std::uint64_t id = 2; cold_ids.size() < 12; ++id) {
      if (svc::shard_of(id, iso_shards) != hot_shard) cold_ids.push_back(id);
    }
    const auto register_one = [&](std::uint64_t id, std::uint64_t tags) {
      svc::RegisterRequest request;
      request.population_id = id;
      request.tag_count = tags;
      request.population_seed = rng::derive_seed(options.seed, 60000 + id);
      return iso_service
          .handle(svc::make_request(svc::CommandId::kRegister,
                                    svc::encode(request)))
          .status == 0;
    };
    if (!register_one(hot, quick ? 4000 : 8000)) return 1;
    for (const std::uint64_t id : cold_ids) {
      if (!register_one(id, 300)) return 1;
    }

    // One fixed cold script, run twice: alone (baseline), then against the
    // hammer (contended).  Two serial clients keep the cold shards far
    // under their admission budget, so every cold request is served.
    const std::uint64_t cold_requests = quick ? 96 : 384;
    const auto run_cold_script = [&](std::vector<double>& wall_us) {
      std::vector<std::thread> workers;
      std::vector<std::vector<double>> parts(2);
      for (unsigned c = 0; c < 2; ++c) {
        workers.emplace_back([&, c] {
          for (std::uint64_t i = c; i < cold_requests; i += 2) {
            const svc::Frame request = estimate_request(
                cold_ids[i % cold_ids.size()],
                rng::derive_seed(options.seed, 70000 + i), 0);
            const auto start = std::chrono::steady_clock::now();
            (void)iso_service.submit(request).get();
            parts[c].push_back(std::chrono::duration<double, std::micro>(
                                   std::chrono::steady_clock::now() - start)
                                   .count());
          }
        });
      }
      for (std::thread& worker : workers) worker.join();
      for (const std::vector<double>& part : parts) {
        wall_us.insert(wall_us.end(), part.begin(), part.end());
      }
      std::sort(wall_us.begin(), wall_us.end());
    };

    std::vector<double> baseline_us;
    run_cold_script(baseline_us);

    std::atomic<bool> hammer_stop{false};
    std::vector<std::future<svc::Frame>> hammer_pending;
    std::thread hammer([&] {
      // Fire-and-forget: keep the hot shard saturated (its admissions shed
      // with typed frames once the per-shard budget fills).  Futures are
      // drained after the cold script so shutdown never abandons work.
      std::uint64_t i = 0;
      while (!hammer_stop.load(std::memory_order_acquire) && i < 100000) {
        hammer_pending.push_back(iso_service.submit(estimate_request(
            hot, rng::derive_seed(options.seed, 80000 + i), 0)));
        ++i;
        if (hammer_pending.size() % 64 == 0) std::this_thread::yield();
      }
    });

    std::vector<double> contended_us;
    run_cold_script(contended_us);
    hammer_stop.store(true, std::memory_order_release);
    hammer.join();
    std::uint64_t hammer_served = 0, hammer_shed = 0;
    for (std::future<svc::Frame>& future : hammer_pending) {
      if (future.get().status == 0) {
        ++hammer_served;
      } else {
        ++hammer_shed;
      }
    }

    // Golden: the cold populations' fold only — a pure function of the cold
    // script (the hammer touches a disjoint population on a disjoint shard).
    svc::PopulationStatsSnapshot cold_fold;
    for (const std::uint64_t id : cold_ids) {
      if (const auto entry = iso_service.registry().find(id)) {
        cold_fold.accumulate(entry->stats);
      }
    }
    bench::TablePrinter iso_table(
        "hot/cold isolation: cold fold at shards=4 (deterministic)",
        {"cold pops", "requests", "ok", "shed", "query slots", "rounds"},
        options.csv);
    iso_table.bind(&session.report());
    iso_table.add_row(
        {bench::TablePrinter::num(std::uint64_t{cold_ids.size()}),
         bench::TablePrinter::num(cold_fold.requests),
         bench::TablePrinter::num(cold_fold.ok),
         bench::TablePrinter::num(cold_fold.shed),
         bench::TablePrinter::num(cold_fold.query_slots),
         bench::TablePrinter::num(cold_fold.rounds)});
    iso_table.print();

    // Machine profile: the isolation ratio itself (acceptance: < 2x).
    const double baseline_p99 = percentile(baseline_us, 0.99);
    const double contended_p99 = percentile(contended_us, 0.99);
    bench::TablePrinter iso_timing(
        "hot/cold isolation timing (NOT golden)",
        {"cold p99 us (alone)", "cold p99 us (hammered)", "ratio",
         "hammer served", "hammer shed"},
        options.csv);
    iso_timing.add_row(
        {bench::TablePrinter::num(baseline_p99, 1),
         bench::TablePrinter::num(contended_p99, 1),
         bench::TablePrinter::num(
             baseline_p99 > 0.0 ? contended_p99 / baseline_p99 : 0.0, 2),
         bench::TablePrinter::num(hammer_served),
         bench::TablePrinter::num(hammer_shed)});
    iso_timing.print();
  }

  // --- Result cache: repeated-seed script ------------------------------------
  // Serial handle() keeps the hit pattern deterministic: pass 0 misses per
  // (population, seed) key, passes 1..3 hit.  Counters and the fold are
  // golden (the fold must be cache-invariant: ok counts every pass); the
  // hit-vs-miss wall p50 speedup is the measured saving (stdout).
  {
    svc::ServiceConfig cache_config;
    cache_config.worker_threads = 1;
    cache_config.cache_entries = 512;
    svc::EstimationService cache_service(cache_config);
    const std::uint64_t cache_pops = 3;
    const std::uint64_t cache_seeds = 32;
    const std::uint64_t passes = 4;
    for (std::uint64_t id = 0; id < cache_pops; ++id) {
      svc::RegisterRequest request;
      request.population_id = id;
      request.tag_count = 600;
      request.population_seed = rng::derive_seed(options.seed, 90000 + id);
      if (cache_service
              .handle(svc::make_request(svc::CommandId::kRegister,
                                        svc::encode(request)))
              .status != 0) {
        return 1;
      }
    }
    std::vector<double> miss_us, hit_us;
    for (std::uint64_t pass = 0; pass < passes; ++pass) {
      for (std::uint64_t id = 0; id < cache_pops; ++id) {
        for (std::uint64_t s = 0; s < cache_seeds; ++s) {
          const svc::Frame request = estimate_request(
              id, rng::derive_seed(options.seed, 95000 + s), 0);
          const auto start = std::chrono::steady_clock::now();
          const svc::Frame response = cache_service.handle(request);
          const double us = std::chrono::duration<double, std::micro>(
                                std::chrono::steady_clock::now() - start)
                                .count();
          if (response.status != 0) return 1;
          (pass == 0 ? miss_us : hit_us).push_back(us);
        }
      }
    }
    const svc::ResultCacheStats cache_stats = cache_service.cache_stats();
    const svc::PopulationStatsSnapshot fold =
        cache_service.registry().fold_stats();
    bench::TablePrinter cache_table(
        "result cache: repeated-seed script (deterministic)",
        {"hits", "misses", "evictions", "entries", "fold ok", "fold rounds"},
        options.csv);
    cache_table.bind(&session.report());
    cache_table.add_row({bench::TablePrinter::num(cache_stats.hits),
                         bench::TablePrinter::num(cache_stats.misses),
                         bench::TablePrinter::num(cache_stats.evictions),
                         bench::TablePrinter::num(cache_stats.entries),
                         bench::TablePrinter::num(fold.ok),
                         bench::TablePrinter::num(fold.rounds)});
    cache_table.print();

    std::sort(miss_us.begin(), miss_us.end());
    std::sort(hit_us.begin(), hit_us.end());
    const double miss_p50 = percentile(miss_us, 0.50);
    const double hit_p50 = percentile(hit_us, 0.50);
    bench::TablePrinter cache_timing(
        "result cache timing (NOT golden)",
        {"miss p50 us", "hit p50 us", "speedup", "cache bytes"}, options.csv);
    cache_timing.add_row(
        {bench::TablePrinter::num(miss_p50, 2),
         bench::TablePrinter::num(hit_p50, 2),
         bench::TablePrinter::num(hit_p50 > 0.0 ? miss_p50 / hit_p50 : 0.0,
                                  1),
         bench::TablePrinter::num(cache_stats.bytes)});
    cache_timing.print();
  }
  return 0;
}
