// Fig. 4 — PET accuracy characteristics vs the number of estimation rounds:
//   (a) accuracy nhat/n,
//   (b) standard deviation of the estimate (Eq. 23),
//   (c) normalized standard deviation,
// for m in {8..1024} and n in {5 000, 10 000, 50 000, 100 000}.
//
// Expected shape: accuracy approaches 1 by m ~ 32-64; normalized deviation
// ~0.2 at m = 64 and is independent of n.
#include <cstdint>
#include <vector>

#include "core/estimator.hpp"
#include "harness/experiment.hpp"
#include "harness/options.hpp"
#include "harness/report.hpp"
#include "harness/table.hpp"

int main(int argc, char** argv) {
  using namespace pet;
  const auto options = bench::BenchOptions::parse(
      argc, argv,
      "Fig. 4: PET accuracy (a), standard deviation (b) and normalized "
      "standard deviation (c) vs estimation rounds, for four population "
      "sizes.");
  bench::BenchSession session(options, "fig4_pet_rounds");

  const std::vector<std::uint64_t> populations = {5000, 10000, 50000, 100000};
  const std::vector<std::uint64_t> round_counts = {8,  16,  32,  64,
                                                   128, 256, 512, 1024};
  const stats::AccuracyRequirement req{0.05, 0.01};
  const core::PetConfig config;

  for (const char series : {'a', 'b', 'c'}) {
    std::vector<std::string> columns = {"rounds m"};
    for (const auto n : populations) {
      columns.push_back("n=" + std::to_string(n));
    }
    const std::string what = series == 'a'   ? "accuracy nhat/n"
                             : series == 'b' ? "standard deviation"
                                             : "normalized standard deviation";
    bench::TablePrinter table("Fig. 4" + std::string(1, series) + ": " + what,
                              columns, options.csv);
    table.bind(&session.report());

    for (const std::uint64_t m : round_counts) {
      std::vector<std::string> row = {bench::TablePrinter::num(m)};
      for (const std::uint64_t n : populations) {
        const auto set =
            bench::run_pet(n, config, req, m, options.runs,
                           options.seed + m * 131 + n);
        double value = 0.0;
        switch (series) {
          case 'a': value = set.summary.accuracy(); break;
          case 'b': value = set.summary.deviation(); break;
          default: value = set.summary.normalized_deviation(); break;
        }
        row.push_back(bench::TablePrinter::num(value, series == 'b' ? 1 : 4));
      }
      table.add_row(std::move(row));
    }
    table.print();
  }
  return 0;
}
