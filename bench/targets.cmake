# Benchmark harness: one executable per paper table/figure plus ablations
# and google-benchmark micro benches.  Included from the top-level
# CMakeLists so that ${CMAKE_BINARY_DIR}/bench contains only executables.

set(PET_BENCH_DIR ${CMAKE_CURRENT_SOURCE_DIR}/bench)

add_library(pet_bench_harness STATIC
  ${PET_BENCH_DIR}/harness/options.cpp
  ${PET_BENCH_DIR}/harness/table.cpp
  ${PET_BENCH_DIR}/harness/report.cpp
  ${PET_BENCH_DIR}/harness/experiment.cpp
)
target_include_directories(pet_bench_harness PUBLIC ${PET_BENCH_DIR})
target_link_libraries(pet_bench_harness PUBLIC pet PRIVATE pet_warnings)

function(pet_bench name)
  add_executable(${name} ${PET_BENCH_DIR}/${name}.cpp)
  target_link_libraries(${name} PRIVATE pet pet_bench_harness pet_warnings)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

pet_bench(table3_pet_slots)
pet_bench(table4_eps_slots)
pet_bench(table5_delta_slots)
pet_bench(fig4_pet_rounds)
pet_bench(fig5_time_comparison)
pet_bench(fig6_distribution)
pet_bench(fig7_memory)
pet_bench(ablation_scaling)
pet_bench(ablation_design)
pet_bench(multireader_bench)
pet_bench(latency_gen2)
pet_bench(gen2_contract_bench)
pet_bench(energy_bench)
pet_bench(robustness_bench)
pet_bench(related_estimators)
pet_bench(service_bench)

# google-benchmark micro benchmarks (hashing, per-round latency, channel
# substrates).
add_executable(micro_ops ${PET_BENCH_DIR}/micro_ops.cpp)
target_link_libraries(micro_ops PRIVATE pet benchmark::benchmark
                                        pet_warnings)
set_target_properties(micro_ops PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
