// Aligned-table / CSV printer for the harness binaries: every bench prints
// the same rows the paper's tables and figures report.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pet::bench {

class TablePrinter {
 public:
  TablePrinter(std::string title, std::vector<std::string> columns,
               bool csv = false);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double value, int precision = 2);
  static std::string num(std::uint64_t value);

  /// Print everything to stdout.
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
  bool csv_;
};

}  // namespace pet::bench
