// Aligned-table / CSV printer for the harness binaries: every bench prints
// the same rows the paper's tables and figures report.  A table can also
// be bound to a runtime::BenchReport, in which case every row is mirrored
// into the BENCH_<target>.json artifact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/json.hpp"

namespace pet::bench {

class TablePrinter {
 public:
  TablePrinter(std::string title, std::vector<std::string> columns,
               bool csv = false);

  /// Mirror every subsequent add_row into `report` (rows already added are
  /// not replayed).  The report must outlive this printer.
  void bind(runtime::BenchReport* report) noexcept { report_ = report; }

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double value, int precision = 2);
  static std::string num(std::uint64_t value);

  /// Print everything to stdout.
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
  bool csv_;
  runtime::BenchReport* report_ = nullptr;
};

}  // namespace pet::bench
