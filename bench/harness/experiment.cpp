#include "harness/experiment.hpp"

#include "channel/sampled_channel.hpp"
#include "channel/sorted_pet_channel.hpp"
#include "rng/prng.hpp"
#include "tags/population.hpp"

namespace pet::bench {

namespace {

void absorb(TrialSet& set, double n_hat, const sim::SlotLedger& ledger,
            std::uint64_t runs) {
  set.summary.add(n_hat);
  set.mean_slots_per_estimate +=
      static_cast<double>(ledger.total_slots()) / static_cast<double>(runs);
  set.mean_reader_bits +=
      static_cast<double>(ledger.reader_bits) / static_cast<double>(runs);
}

}  // namespace

TrialSet run_pet(std::uint64_t n, const core::PetConfig& config,
                 const stats::AccuracyRequirement& req, std::uint64_t rounds,
                 std::uint64_t runs, std::uint64_t seed) {
  TrialSet set(static_cast<double>(n));
  const core::PetEstimator estimator(config, req);
  const std::uint64_t m = rounds == 0 ? estimator.planned_rounds() : rounds;

  // Tag IDs are arbitrary; the per-run randomness is the manufacturing
  // seed (fresh preloaded codes) plus the reader's estimating paths.
  const auto pop = tags::TagPopulation::generate(n, 0xdecafULL);
  const std::vector<TagId> ids(pop.ids().begin(), pop.ids().end());

  for (std::uint64_t run = 0; run < runs; ++run) {
    chan::SortedPetChannelConfig channel_config;
    channel_config.tree_height = config.tree_height;
    channel_config.manufacturing_seed = rng::derive_seed(seed, 2 * run);
    chan::SortedPetChannel channel(ids, channel_config);
    const auto result = estimator.estimate_with_rounds(
        channel, m, rng::derive_seed(seed, 2 * run + 1));
    absorb(set, result.n_hat, result.ledger, runs);
  }
  return set;
}

TrialSet run_fneb(std::uint64_t n, const proto::FnebConfig& config,
                  const stats::AccuracyRequirement& req, std::uint64_t rounds,
                  std::uint64_t runs, std::uint64_t seed) {
  TrialSet set(static_cast<double>(n));
  const proto::FnebEstimator estimator(config, req);
  const std::uint64_t m = rounds == 0 ? estimator.planned_rounds() : rounds;
  for (std::uint64_t run = 0; run < runs; ++run) {
    chan::SampledChannel channel(n, rng::derive_seed(seed, 3 * run));
    const auto result = estimator.estimate_with_rounds(
        channel, m, rng::derive_seed(seed, 3 * run + 1));
    absorb(set, result.n_hat, result.ledger, runs);
  }
  return set;
}

TrialSet run_lof(std::uint64_t n, const proto::LofConfig& config,
                 const stats::AccuracyRequirement& req, std::uint64_t rounds,
                 std::uint64_t runs, std::uint64_t seed) {
  TrialSet set(static_cast<double>(n));
  const proto::LofEstimator estimator(config, req);
  const std::uint64_t m = rounds == 0 ? estimator.planned_rounds() : rounds;
  for (std::uint64_t run = 0; run < runs; ++run) {
    chan::SampledChannel channel(n, rng::derive_seed(seed, 5 * run));
    const auto result = estimator.estimate_with_rounds(
        channel, m, rng::derive_seed(seed, 5 * run + 1));
    absorb(set, result.n_hat, result.ledger, runs);
  }
  return set;
}

TrialSet run_upe(std::uint64_t n, const proto::UpeConfig& config,
                 const stats::AccuracyRequirement& req, std::uint64_t runs,
                 std::uint64_t seed) {
  TrialSet set(static_cast<double>(n));
  const proto::UpeEstimator estimator(config, req);
  for (std::uint64_t run = 0; run < runs; ++run) {
    chan::SampledChannel channel(n, rng::derive_seed(seed, 7 * run));
    const auto result =
        estimator.estimate(channel, rng::derive_seed(seed, 7 * run + 1));
    absorb(set, result.n_hat, result.ledger, runs);
  }
  return set;
}

TrialSet run_ezb(std::uint64_t n, const proto::EzbConfig& config,
                 const stats::AccuracyRequirement& req, std::uint64_t runs,
                 std::uint64_t seed) {
  TrialSet set(static_cast<double>(n));
  const proto::EzbEstimator estimator(config, req);
  for (std::uint64_t run = 0; run < runs; ++run) {
    chan::SampledChannel channel(n, rng::derive_seed(seed, 11 * run));
    const auto result =
        estimator.estimate(channel, rng::derive_seed(seed, 11 * run + 1));
    absorb(set, result.n_hat, result.ledger, runs);
  }
  return set;
}

}  // namespace pet::bench
