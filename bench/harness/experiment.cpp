#include "harness/experiment.hpp"

#include <chrono>
#include <optional>

#include "channel/arena.hpp"
#include "channel/sampled_channel.hpp"
#include "channel/sorted_pet_channel.hpp"
#include "common/fastpath.hpp"
#include "obs/profile.hpp"
#include "rng/prng.hpp"
#include "runtime/trial_runner.hpp"
#include "tags/population.hpp"

namespace pet::bench {

namespace {

/// Stopwatch splitting one trial into its build and estimate phases for the
/// process-wide obs::SweepPhase totals (the artifact "profile" member).
class PhaseSplit {
 public:
  PhaseSplit() : begin_(std::chrono::steady_clock::now()) {}

  /// Call between channel acquisition and estimation.
  void built() noexcept {
    split_ = std::chrono::steady_clock::now();
    obs::add_sweep_phase_seconds(
        obs::SweepPhase::kBuild,
        std::chrono::duration<double>(split_ - begin_).count());
  }

  ~PhaseSplit() {
    obs::add_sweep_phase_seconds(
        obs::SweepPhase::kEstimate,
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      split_)
            .count());
  }

 private:
  std::chrono::steady_clock::time_point begin_;
  std::chrono::steady_clock::time_point split_{begin_};
};


void absorb(TrialSet& set, double n_hat, const sim::SlotLedger& ledger,
            std::uint64_t runs) {
  set.summary.add(n_hat);
  set.mean_slots_per_estimate +=
      static_cast<double>(ledger.total_slots()) / static_cast<double>(runs);
  set.mean_reader_bits +=
      static_cast<double>(ledger.reader_bits) / static_cast<double>(runs);
}

/// Shard `runs` independent trials across the global runner and fold them
/// in trial order — bit-identical to the serial loop this replaced, for
/// any thread count (docs/runtime.md).
template <typename Trial>
TrialSet aggregate(std::uint64_t n, std::uint64_t runs, const char* label,
                   Trial&& trial) {
  TrialSet set(static_cast<double>(n));
  runtime::global_runner().run<core::EstimateResult>(
      runs, std::forward<Trial>(trial),
      [&](std::uint64_t, core::EstimateResult&& result) {
        absorb(set, result.n_hat, result.ledger, runs);
      },
      label);
  return set;
}

/// One driver for every rehash-per-round baseline: they differ only in the
/// estimator type, the seed stride (kept from the historical serial code so
/// published numbers do not move) and whether a round override exists.
template <typename Estimator>
TrialSet run_sampled(std::uint64_t n, const Estimator& estimator,
                     std::uint64_t rounds, std::uint64_t runs,
                     std::uint64_t seed, std::uint64_t stride,
                     const char* label) {
  return aggregate(n, runs, label, [&estimator, n, rounds, seed,
                                    stride](std::uint64_t run) {
    PhaseSplit phases;
    // The arena channel is bit-identical to a per-trial construction
    // (reset() reinstates the freshly-constructed state); the slow path
    // keeps the historical per-trial object for A/B comparison.
    std::optional<chan::SampledChannel> local;
    const std::uint64_t chan_seed = rng::derive_seed(seed, stride * run);
    chan::SampledChannel& channel =
        fast_path_enabled() ? chan::arena_sampled_channel(n, chan_seed)
                            : local.emplace(n, chan_seed);
    phases.built();
    const std::uint64_t est_seed = rng::derive_seed(seed, stride * run + 1);
    if constexpr (requires {
                    estimator.estimate_with_rounds(channel, rounds, est_seed);
                  }) {
      if (rounds != 0) {
        return estimator.estimate_with_rounds(channel, rounds, est_seed);
      }
    }
    return estimator.estimate(channel, est_seed);
  });
}

}  // namespace

TrialSet run_pet(std::uint64_t n, const core::PetConfig& config,
                 const stats::AccuracyRequirement& req, std::uint64_t rounds,
                 std::uint64_t runs, std::uint64_t seed) {
  const core::PetEstimator estimator(config, req);
  const std::uint64_t m = rounds == 0 ? estimator.planned_rounds() : rounds;

  // Tag IDs are arbitrary; the per-run randomness is the manufacturing
  // seed (fresh preloaded codes) plus the reader's estimating paths.
  const auto pop = tags::TagPopulation::generate(n, 0xdecafULL);
  const std::vector<TagId> ids(pop.ids().begin(), pop.ids().end());

  return aggregate(n, runs, "PET", [&estimator, &ids, &config, m,
                                    seed](std::uint64_t run) {
    PhaseSplit phases;
    chan::SortedPetChannelConfig channel_config;
    channel_config.tree_height = config.tree_height;
    channel_config.manufacturing_seed = rng::derive_seed(seed, 2 * run);
    std::optional<chan::SortedPetChannel> local;
    chan::SortedPetChannel& channel =
        fast_path_enabled()
            ? chan::arena_sorted_pet_channel(ids, channel_config)
            : local.emplace(ids, channel_config);
    phases.built();
    auto result = estimator.estimate_with_rounds(
        channel, m, rng::derive_seed(seed, 2 * run + 1));
    // The arena channel outlives the trial, so publish the final round's
    // obs delta now — metric snapshots taken at session finish must not
    // wait for the next trial's rebuild.
    channel.flush_obs();
    return result;
  });
}

TrialSet run_fneb(std::uint64_t n, const proto::FnebConfig& config,
                  const stats::AccuracyRequirement& req, std::uint64_t rounds,
                  std::uint64_t runs, std::uint64_t seed) {
  const proto::FnebEstimator estimator(config, req);
  const std::uint64_t m = rounds == 0 ? estimator.planned_rounds() : rounds;
  return run_sampled(n, estimator, m, runs, seed, 3, "FNEB");
}

TrialSet run_lof(std::uint64_t n, const proto::LofConfig& config,
                 const stats::AccuracyRequirement& req, std::uint64_t rounds,
                 std::uint64_t runs, std::uint64_t seed) {
  const proto::LofEstimator estimator(config, req);
  const std::uint64_t m = rounds == 0 ? estimator.planned_rounds() : rounds;
  return run_sampled(n, estimator, m, runs, seed, 5, "LoF");
}

TrialSet run_upe(std::uint64_t n, const proto::UpeConfig& config,
                 const stats::AccuracyRequirement& req, std::uint64_t runs,
                 std::uint64_t seed) {
  const proto::UpeEstimator estimator(config, req);
  return run_sampled(n, estimator, 0, runs, seed, 7, "UPE");
}

TrialSet run_ezb(std::uint64_t n, const proto::EzbConfig& config,
                 const stats::AccuracyRequirement& req, std::uint64_t runs,
                 std::uint64_t seed) {
  const proto::EzbEstimator estimator(config, req);
  return run_sampled(n, estimator, 0, runs, seed, 11, "EZB");
}

}  // namespace pet::bench
