#include "harness/report.hpp"

#include <cstdio>
#include <exception>
#include <optional>
#include <utility>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "runtime/cancel.hpp"
#include "runtime/trial_runner.hpp"

namespace pet::bench {

BenchSession::BenchSession(const BenchOptions& options, std::string target)
    : report_(target, runtime::global_runner().thread_count()),
      path_(options.json.empty() ? "BENCH_" + target + ".json"
                                 : options.json),
      quiet_(options.quiet),
      start_(std::chrono::steady_clock::now()) {}

BenchSession::~BenchSession() { finish(); }

void BenchSession::finish() noexcept {
  if (finished_) return;
  finished_ = true;
  report_.set_wall_seconds(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count());
  // A drain requested mid-sweep (SIGINT/SIGTERM tripping the shutdown
  // latch) still flushes whatever rows completed, marked so downstream
  // tooling never mistakes the partial sweep for a full one.
  if (runtime::shutdown_requested()) {
    report_.set_truncated(true);
  }
  // Per-phase wall breakdown (summed across worker threads; the build vs
  // estimate *ratio* is the signal).  Emitted in every artifact; benchdiff
  // ignores it like wall_seconds.
  report_.set_profile_json(
      "{\"build_seconds\": " +
      runtime::json_number(obs::sweep_phase_seconds(obs::SweepPhase::kBuild),
                           6) +
      ", \"estimate_seconds\": " +
      runtime::json_number(
          obs::sweep_phase_seconds(obs::SweepPhase::kEstimate), 6) +
      "}");
  if (obs::counters_enabled()) {
    auto& runner = runtime::global_runner();
    const runtime::ThreadPool::Stats stats = runner.pool_stats();
    obs::PoolSample pool;
    pool.threads = runner.thread_count();
    pool.submitted = stats.submitted;
    pool.stolen = stats.stolen;
    pool.max_queue_depth = stats.max_queue_depth;
    pool.worker_tasks = stats.worker_tasks;
    report_.set_metrics_json(
        obs::metrics_json(obs::MetricsRegistry::instance().snapshot(), {},
                          std::optional<obs::PoolSample>(std::move(pool))));
  }
  try {
    report_.write(path_);
    if (!quiet_) {
      std::fprintf(stderr, "wrote %s (%zu rows%s)\n", path_.c_str(),
                   report_.row_count(),
                   report_.truncated() ? ", truncated by shutdown" : "");
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "BENCH json not written: %s\n", error.what());
  }
}

}  // namespace pet::bench
