// Shared command-line handling for the table/figure harness binaries.
//
// Every harness accepts:
//   --runs=N     repetitions per data point (default 300, the paper's setup)
//   --quick      shrink runs to 30 for smoke testing
//   --csv        machine-readable output instead of aligned tables
//   --seed=S     master seed (default 1)
//   --threads=T  worker threads for the trial runner (default: hardware
//                concurrency; --threads=1 reproduces the serial behaviour —
//                results are bit-identical either way, see docs/runtime.md)
//   --quiet      suppress the stderr progress meter
//   --json=PATH  where to write the BENCH_<target>.json result artifact
//                (default: BENCH_<target>.json in the working directory)
//   --obs=LEVEL  observability level off|counters|full (default counters);
//                counters and above embed a "metrics" section in the JSON
//                artifact.  Deterministic fields are unaffected by the
//                level (docs/observability.md).
//   --fast-path=on|off
//                oracle-synthesized rounds + per-thread channel arenas
//                (default on; also settable via PET_FAST_PATH=0).  Results
//                are bit-identical either way; only wall time moves
//                (docs/performance.md, scripts/check_repro.sh claim 6).
//   --help       usage
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace pet::bench {

struct BenchOptions {
  std::uint64_t runs = 300;
  bool csv = false;
  std::uint64_t seed = 1;
  unsigned threads = 0;  ///< 0 = hardware concurrency
  bool quiet = false;
  std::string json;  ///< empty = default BENCH_<target>.json
  obs::Level obs_level = obs::Level::kCounters;

  /// Parse argv; prints usage and exits(0) on --help, exits(2) on unknown
  /// arguments.  Also configures runtime::global_runner() with the chosen
  /// thread count and progress setting — the one call every bench makes
  /// before running trials.
  static BenchOptions parse(int argc, char** argv,
                            const std::string& description);
};

}  // namespace pet::bench
