// Shared command-line handling for the table/figure harness binaries.
//
// Every harness accepts:
//   --runs=N     repetitions per data point (default 300, the paper's setup)
//   --quick      shrink runs to 30 for smoke testing
//   --csv        machine-readable output instead of aligned tables
//   --seed=S     master seed (default 1)
//   --help       usage
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pet::bench {

struct BenchOptions {
  std::uint64_t runs = 300;
  bool csv = false;
  std::uint64_t seed = 1;

  /// Parse argv; prints usage and exits(0) on --help, exits(2) on unknown
  /// arguments.
  static BenchOptions parse(int argc, char** argv,
                            const std::string& description);
};

}  // namespace pet::bench
