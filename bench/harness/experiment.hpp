// Shared experiment drivers: run repeated estimation trials of a known
// ground truth under each protocol and aggregate the paper's metrics.
//
// Trials execute on runtime::global_runner() — sharded across worker
// threads, folded in trial order, so every TrialSet is bit-identical to
// the serial loop regardless of --threads (docs/runtime.md).
//
// Fidelity choices (see DESIGN.md "scalability ladder"):
//  * PET runs on SortedPetChannel — the bit-exact preloaded-code protocol
//    (Algorithm 4), fresh manufacturing codes per run;
//  * FNEB / LoF / UPE / EZB rehash per round, so they run on SampledChannel,
//    whose per-round observables are drawn from the exact distributions.
#pragma once

#include <cstdint>

#include "core/estimator.hpp"
#include "protocols/ezb.hpp"
#include "protocols/fneb.hpp"
#include "protocols/lof.hpp"
#include "protocols/upe.hpp"
#include "stats/accuracy.hpp"

namespace pet::bench {

/// Aggregate of `runs` repeated estimates of the same ground truth.
struct TrialSet {
  stats::TrialSummary summary;         ///< paper Eqs. (22)-(23) metrics
  double mean_slots_per_estimate = 0;  ///< protocol cost per estimate
  double mean_reader_bits = 0;         ///< downlink cost per estimate

  explicit TrialSet(double true_n) : summary(true_n) {}
};

/// PET, preloaded codes (Algorithm 4), binary-search reader (Algorithm 3)
/// unless overridden in `config`.  rounds == 0 uses the Eq.-(20) plan.
TrialSet run_pet(std::uint64_t n, const core::PetConfig& config,
                 const stats::AccuracyRequirement& req, std::uint64_t rounds,
                 std::uint64_t runs, std::uint64_t seed);

TrialSet run_fneb(std::uint64_t n, const proto::FnebConfig& config,
                  const stats::AccuracyRequirement& req, std::uint64_t rounds,
                  std::uint64_t runs, std::uint64_t seed);

TrialSet run_lof(std::uint64_t n, const proto::LofConfig& config,
                 const stats::AccuracyRequirement& req, std::uint64_t rounds,
                 std::uint64_t runs, std::uint64_t seed);

TrialSet run_upe(std::uint64_t n, const proto::UpeConfig& config,
                 const stats::AccuracyRequirement& req, std::uint64_t runs,
                 std::uint64_t seed);

TrialSet run_ezb(std::uint64_t n, const proto::EzbConfig& config,
                 const stats::AccuracyRequirement& req, std::uint64_t runs,
                 std::uint64_t seed);

}  // namespace pet::bench
