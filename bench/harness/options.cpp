#include "harness/options.hpp"

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string_view>

#include "common/fastpath.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "runtime/cancel.hpp"
#include "runtime/parallel_exec.hpp"
#include "runtime/trial_runner.hpp"

namespace pet::bench {

BenchOptions BenchOptions::parse(int argc, char** argv,
                                 const std::string& description) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("%s\n\n", description.c_str());
      std::printf(
          "options:\n"
          "  --runs=N     repetitions per data point (default 300)\n"
          "  --quick      use 30 runs (smoke test)\n"
          "  --csv        CSV output\n"
          "  --seed=S     master seed (default 1)\n"
          "  --threads=T  trial-runner threads (default: hardware "
          "concurrency)\n"
          "  --quiet      no stderr progress meter\n"
          "  --json=PATH  result artifact path (default "
          "BENCH_<target>.json)\n"
          "  --obs=LEVEL  observability level off|counters|full "
          "(default counters)\n"
          "  --fast-path=on|off  oracle rounds + channel arenas (default on;\n"
          "               off replays the historical probed path — results\n"
          "               are bit-identical either way, see "
          "docs/performance.md)\n");
      std::exit(0);
    } else if (arg == "--quick") {
      options.runs = 30;
    } else if (arg == "--csv") {
      options.csv = true;
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else if (arg.rfind("--runs=", 0) == 0) {
      options.runs = std::strtoull(argv[i] + 7, nullptr, 10);
      if (options.runs == 0) {
        std::fprintf(stderr, "--runs must be positive\n");
        std::exit(2);
      }
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (arg.rfind("--threads=", 0) == 0) {
      options.threads =
          static_cast<unsigned>(std::strtoul(argv[i] + 10, nullptr, 10));
    } else if (arg.rfind("--json=", 0) == 0) {
      options.json = std::string(arg.substr(7));
      if (options.json.empty()) {
        std::fprintf(stderr, "--json needs a path\n");
        std::exit(2);
      }
    } else if (arg.rfind("--fast-path=", 0) == 0) {
      const std::string_view value = arg.substr(12);
      if (value == "on") {
        set_fast_path(true);
      } else if (value == "off") {
        set_fast_path(false);
      } else {
        std::fprintf(stderr, "--fast-path must be on or off\n");
        std::exit(2);
      }
    } else if (arg.rfind("--obs=", 0) == 0) {
      try {
        options.obs_level = obs::parse_level(arg.substr(6));
      } catch (const std::exception& error) {
        std::fprintf(stderr, "%s\n", error.what());
        std::exit(2);
      }
    } else {
      std::fprintf(stderr, "unknown argument: %s (try --help)\n", argv[i]);
      std::exit(2);
    }
  }
  runtime::global_runner().configure(options.threads, !options.quiet);
  // Intra-trial parallel radix partition shares the same --threads budget.
  // Builds issued from pool workers stay serial (cross-trial parallelism
  // already owns the cores), so this only engages for foreground builds.
  runtime::configure_build_parallelism(options.threads);
  // Graceful SIGINT/SIGTERM: the first signal trips the shutdown latch, the
  // trial runner folds the trials already finished, and BenchSession flushes
  // a partial artifact marked "truncated": true.  A second signal force-
  // exits (see runtime/cancel.cpp).
  runtime::install_shutdown_handlers();
  runtime::global_runner().set_cancel_token(
      runtime::CancelToken::linked_to_shutdown());
  obs::set_level(options.obs_level);
  // Fresh counts for this harness run: registrations from other benches in
  // the same process (gtest-style multi-runs) must not leak into the
  // artifact's metrics section.
  obs::MetricsRegistry::instance().reset();
  obs::reset_sweep_phase_seconds();
  return options;
}

}  // namespace pet::bench
