#include "harness/options.hpp"

#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace pet::bench {

BenchOptions BenchOptions::parse(int argc, char** argv,
                                 const std::string& description) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("%s\n\n", description.c_str());
      std::printf("options:\n"
                  "  --runs=N   repetitions per data point (default 300)\n"
                  "  --quick    use 30 runs (smoke test)\n"
                  "  --csv      CSV output\n"
                  "  --seed=S   master seed (default 1)\n");
      std::exit(0);
    } else if (arg == "--quick") {
      options.runs = 30;
    } else if (arg == "--csv") {
      options.csv = true;
    } else if (arg.rfind("--runs=", 0) == 0) {
      options.runs = std::strtoull(argv[i] + 7, nullptr, 10);
      if (options.runs == 0) {
        std::fprintf(stderr, "--runs must be positive\n");
        std::exit(2);
      }
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown argument: %s (try --help)\n", argv[i]);
      std::exit(2);
    }
  }
  return options;
}

}  // namespace pet::bench
