#include "harness/table.hpp"

#include <algorithm>
#include <cstdio>

#include "common/ensure.hpp"

namespace pet::bench {

TablePrinter::TablePrinter(std::string title, std::vector<std::string> columns,
                           bool csv)
    : title_(std::move(title)), columns_(std::move(columns)), csv_(csv) {
  expects(!columns_.empty(), "TablePrinter needs at least one column");
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  expects(cells.size() == columns_.size(),
          "TablePrinter row width must match the header");
  if (report_ != nullptr) report_->add_row(title_, columns_, cells);
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::num(std::uint64_t value) {
  return std::to_string(value);
}

void TablePrinter::print() const {
  if (csv_) {
    std::printf("# %s\n", title_.c_str());
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      std::printf("%s%s", c ? "," : "", columns_[c].c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        std::printf("%s%s", c ? "," : "", row[c].c_str());
      }
      std::printf("\n");
    }
    return;
  }

  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::printf("\n== %s ==\n", title_.c_str());
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      std::printf("%s%-*s", c ? "  " : "", static_cast<int>(widths[c]),
                  cells[c].c_str());
    }
    std::printf("\n");
  };
  print_row(columns_);
  std::size_t total = columns_.size() ? 2 * (columns_.size() - 1) : 0;
  for (const auto w : widths) total += w;
  std::printf("%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) print_row(row);
}

}  // namespace pet::bench
