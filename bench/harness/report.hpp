// BenchSession — owns the BENCH_<target>.json artifact of one harness run.
//
// Construct it right after BenchOptions::parse, bind() the tables you want
// mirrored, and the session writes the artifact (wall time included) when
// finish() runs — at destruction at the latest.  The schema and its
// stability guarantees are documented in docs/runtime.md.
#pragma once

#include <chrono>
#include <string>

#include "harness/options.hpp"
#include "runtime/json.hpp"

namespace pet::bench {

class BenchSession {
 public:
  BenchSession(const BenchOptions& options, std::string target);
  ~BenchSession();

  BenchSession(const BenchSession&) = delete;
  BenchSession& operator=(const BenchSession&) = delete;

  [[nodiscard]] runtime::BenchReport& report() noexcept { return report_; }

  /// Stamp the wall time and write the artifact; idempotent.  Failures are
  /// reported on stderr, not thrown — a missing artifact must not zero out
  /// an hour-long sweep's stdout tables.
  void finish() noexcept;

 private:
  runtime::BenchReport report_;
  std::string path_;
  bool quiet_;
  bool finished_ = false;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace pet::bench
