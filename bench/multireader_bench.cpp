// Multi-reader bench (Section 4.6.3): estimation quality and cost as the
// deployment grows from one reader to many, with overlapping coverage and
// mobile tags.  The controller's duplicate-insensitive fusion should keep
// accuracy and slot cost flat regardless of reader count or overlap.
#include <cstdint>
#include <memory>
#include <vector>

#include "channel/sorted_pet_channel.hpp"
#include "core/estimator.hpp"
#include "harness/options.hpp"
#include "harness/report.hpp"
#include "harness/table.hpp"
#include "multireader/controller.hpp"
#include "rng/prng.hpp"
#include "runtime/trial_runner.hpp"
#include "stats/accuracy.hpp"
#include "tags/mobility.hpp"
#include "tags/population.hpp"

namespace {

pet::multi::MultiReaderController make_controller(
    const pet::tags::ZoneMap& zones) {
  // Sorted preloaded-code channels per zone: duplicate tags in overlapping
  // zones carry identical codes (same manufacturing seed), which is what
  // makes the fusion duplicate-insensitive.
  std::vector<std::unique_ptr<pet::chan::PrefixChannel>> readers;
  for (std::size_t z = 0; z < zones.zone_count(); ++z) {
    readers.push_back(std::make_unique<pet::chan::SortedPetChannel>(
        zones.audible_in(z)));
  }
  return pet::multi::MultiReaderController(std::move(readers));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pet;
  auto options = bench::BenchOptions::parse(
      argc, argv,
      "Multi-reader scenarios: readers/overlap/mobility sweeps with fused "
      "PET estimation.");
  // The exact per-zone channels make runs O(n) per round; scale the default
  // repetition count down accordingly.
  options.runs = std::min<std::uint64_t>(options.runs, 40);
  bench::BenchSession session(options, "multireader_bench");

  const std::uint64_t n = 20000;
  const stats::AccuracyRequirement req{0.10, 0.05};
  const core::PetEstimator estimator(core::PetConfig{}, req);

  {
    bench::TablePrinter table(
        "Readers sweep (n = 20000, overlap 30%, Eq.-20 rounds)",
        {"readers", "accuracy", "in-interval", "controller slots"},
        options.csv);
    table.bind(&session.report());
    for (const std::size_t readers : {1u, 2u, 4u, 8u, 16u}) {
      stats::TrialSummary summary(static_cast<double>(n));
      double slots = 0.0;
      runtime::global_runner().run<core::EstimateResult>(
          options.runs,
          [&](std::uint64_t run) {
            const auto pop = tags::TagPopulation::generate(n, 999);
            tags::ZoneMap zones(readers, rng::derive_seed(options.seed, run));
            zones.scatter(pop);
            zones.add_overlap(0.3);
            auto controller = make_controller(zones);
            return estimator.estimate(
                controller, rng::derive_seed(options.seed, 1000 + run));
          },
          [&](std::uint64_t, core::EstimateResult&& result) {
            summary.add(result.n_hat);
            slots += static_cast<double>(result.ledger.total_slots()) /
                     static_cast<double>(options.runs);
          },
          "readers sweep");
      table.add_row({bench::TablePrinter::num(
                         static_cast<std::uint64_t>(readers)),
                     bench::TablePrinter::num(summary.accuracy(), 4),
                     bench::TablePrinter::num(
                         summary.fraction_within(req.epsilon), 3),
                     bench::TablePrinter::num(slots, 0)});
    }
    table.print();
  }

  {
    bench::TablePrinter table(
        "Overlap sweep (n = 20000, 4 readers)",
        {"overlap prob", "duplicated tags (avg)", "accuracy",
         "in-interval"},
        options.csv);
    table.bind(&session.report());
    for (const double overlap : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      stats::TrialSummary summary(static_cast<double>(n));
      double duplicated = 0.0;
      struct OverlapTrial {
        double n_hat;
        std::size_t audible_total;
      };
      runtime::global_runner().run<OverlapTrial>(
          options.runs,
          [&](std::uint64_t run) {
            const auto pop = tags::TagPopulation::generate(n, 999);
            tags::ZoneMap zones(4, rng::derive_seed(options.seed, 50 + run));
            zones.scatter(pop);
            zones.add_overlap(overlap);
            std::size_t audible_total = 0;
            for (std::size_t z = 0; z < 4; ++z) {
              audible_total += zones.audible_in(z).size();
            }
            auto controller = make_controller(zones);
            const double n_hat =
                estimator
                    .estimate(controller,
                              rng::derive_seed(options.seed, 2000 + run))
                    .n_hat;
            return OverlapTrial{n_hat, audible_total};
          },
          [&](std::uint64_t, OverlapTrial&& trial) {
            duplicated += static_cast<double>(trial.audible_total - n) /
                          static_cast<double>(options.runs);
            summary.add(trial.n_hat);
          },
          "overlap sweep");
      table.add_row({bench::TablePrinter::num(overlap, 2),
                     bench::TablePrinter::num(duplicated, 0),
                     bench::TablePrinter::num(summary.accuracy(), 4),
                     bench::TablePrinter::num(
                         summary.fraction_within(req.epsilon), 3)});
    }
    table.print();
  }

  {
    bench::TablePrinter table(
        "Mobility sweep (n = 20000, 8 readers, tags move between "
        "estimates)",
        {"move prob/step", "accuracy", "in-interval"}, options.csv);
    table.bind(&session.report());
    // Stays serial: zones.step() carries the walk state from one estimate
    // to the next, so the trials are not independent.
    for (const double move : {0.0, 0.2, 0.5, 0.9}) {
      stats::TrialSummary summary(static_cast<double>(n));
      const auto pop = tags::TagPopulation::generate(n, 999);
      tags::ZoneMap zones(8, options.seed);
      zones.scatter(pop);
      for (std::uint64_t run = 0; run < options.runs; ++run) {
        zones.step(move);
        auto controller = make_controller(zones);
        summary.add(estimator
                        .estimate(controller,
                                  rng::derive_seed(options.seed, 3000 + run))
                        .n_hat);
      }
      table.add_row({bench::TablePrinter::num(move, 2),
                     bench::TablePrinter::num(summary.accuracy(), 4),
                     bench::TablePrinter::num(
                         summary.fraction_within(req.epsilon), 3)});
    }
    table.print();
  }
  return 0;
}
