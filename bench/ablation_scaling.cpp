// Ablation — asymptotic scaling: slots per estimate as the population grows
// from 10^2 to 10^6, for
//   * PET with binary search        (O(log log n) per round, constant here
//                                    because H is fixed at 32),
//   * PET with the linear walk      (O(log n) per round, like FNEB/LoF),
//   * DFSA identification           (Theta(n)),
//   * tree-walking identification   (Theta(n)).
//
// This regenerates the paper's headline complexity claim as data.
//
// The second table benchmarks the construction path itself — the SIMD
// batch hash plus the (optionally parallel) radix sort behind
// SortedPetChannel::rebuild — at populations up to 10^8 (docs/
// performance.md).  Its golden-gated cells are the deterministic ones
// (n, rebuilds, a checksum of the sorted code array, identical across
// SIMD tiers and --threads); tags/sec is machine profile and goes to
// stderr plus the benchdiff-ignored obs metrics only.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "channel/sorted_pet_channel.hpp"
#include "common/parallel.hpp"
#include "common/radix.hpp"
#include "common/simd.hpp"
#include "core/estimator.hpp"
#include "harness/experiment.hpp"
#include "harness/options.hpp"
#include "harness/report.hpp"
#include "harness/table.hpp"
#include "protocols/identification.hpp"
#include "rng/hash_family.hpp"
#include "runtime/trial_runner.hpp"
#include "tags/population.hpp"

namespace {

struct IdentifySlots {
  double dfsa = 0;
  double tree = 0;
};

// FNV-1a over the sorted code values: any reordering or single-bit drift in
// the build output changes the cell, so the golden gate pins byte-identity
// of the whole array without storing it.
std::string code_checksum(const std::vector<std::uint64_t>& values) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const std::uint64_t v : values) {
    h = (h ^ v) * 1099511628211ULL;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(h));
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pet;
  const auto options = bench::BenchOptions::parse(
      argc, argv,
      "Scaling ablation: slots vs population size for PET (binary/linear) "
      "and the identification baselines.");
  bench::BenchSession session(options, "ablation_scaling");
  // Identification at n = 10^6 is slow-ish; a handful of runs suffices for
  // Theta(n) numbers.
  const std::uint64_t id_runs = std::min<std::uint64_t>(options.runs, 10);

  const stats::AccuracyRequirement req{0.05, 0.01};
  core::PetConfig binary;
  core::PetConfig linear;
  linear.search = core::SearchMode::kLinear;

  bench::TablePrinter table(
      "Scaling: mean slots per estimate / identification pass",
      {"n", "PET binary (Alg.3)", "PET linear (Alg.1)", "DFSA identify",
       "TreeWalk identify"},
      options.csv);
  table.bind(&session.report());

  for (const std::uint64_t n : {100ull, 1000ull, 10000ull, 100000ull,
                                1000000ull}) {
    // The per-run channel build is O(n log n); scale repetitions down for
    // the million-tag cells (slot counts are deterministic given the mode).
    const std::uint64_t pet_runs =
        n >= 100000 ? std::max<std::uint64_t>(options.runs / 10, 10)
                    : options.runs;
    const auto pet_bs =
        bench::run_pet(n, binary, req, 0, pet_runs, options.seed);
    const auto pet_lin =
        bench::run_pet(n, linear, req, 0, pet_runs, options.seed + 1);

    // The EPC Q <= 15 frame cap saturates beyond ~10^5 tags (DFSA stalls
    // with zero singletons per frame); lift the cap with the population so
    // the Theta(n) trend stays measurable.
    proto::DfsaConfig dfsa_config;
    dfsa_config.max_frame_size =
        std::max<std::uint64_t>(dfsa_config.max_frame_size, 2 * n);

    double dfsa_slots = 0;
    double tree_slots = 0;
    runtime::global_runner().run<IdentifySlots>(
        id_runs,
        [&](std::uint64_t r) {
          IdentifySlots slots;
          slots.dfsa = static_cast<double>(
              proto::identify_dfsa_sampled(n, dfsa_config,
                                           options.seed + 100 + r)
                  .ledger.total_slots());
          slots.tree = static_cast<double>(
              proto::identify_treewalk_sampled(n, proto::TreeWalkConfig{},
                                               options.seed + 200 + r)
                  .ledger.total_slots());
          return slots;
        },
        [&](std::uint64_t, IdentifySlots&& slots) {
          dfsa_slots += slots.dfsa;
          tree_slots += slots.tree;
        },
        "identification");
    dfsa_slots /= static_cast<double>(id_runs);
    tree_slots /= static_cast<double>(id_runs);

    table.add_row({bench::TablePrinter::num(n),
                   bench::TablePrinter::num(pet_bs.mean_slots_per_estimate, 0),
                   bench::TablePrinter::num(pet_lin.mean_slots_per_estimate, 0),
                   bench::TablePrinter::num(dfsa_slots, 0),
                   bench::TablePrinter::num(tree_slots, 0)});
  }
  table.print();

  // --- Build throughput -------------------------------------------------
  // Full runs take the 10^6/10^7/10^8 points; --quick (which is what
  // generates bench/golden/) stays at sizes the gate can afford.
  const bool quick = options.runs <= 30;
  const std::vector<std::uint64_t> build_sizes =
      quick ? std::vector<std::uint64_t>{200000ull, 1000000ull}
            : std::vector<std::uint64_t>{1000000ull, 10000000ull,
                                         100000000ull};
  bench::TablePrinter build_table(
      "Build throughput: SIMD batch hash + radix-sorted codes (H=64)",
      {"n", "rebuilds", "codes checksum"}, options.csv);
  build_table.bind(&session.report());

  for (const std::uint64_t n : build_sizes) {
    const auto pop = tags::TagPopulation::generate(n, options.seed + 77);
    const std::vector<TagId> tags(pop.ids().begin(), pop.ids().end());
    const std::uint64_t rebuilds = n >= 100000000ull ? 2 : 5;

    chan::SortedPetChannelConfig config;
    config.tree_height = 64;
    config.manufacturing_seed = options.seed + 7000;
    const auto start = std::chrono::steady_clock::now();
    chan::SortedPetChannel channel(tags, config);
    for (std::uint64_t r = 1; r < rebuilds; ++r) {
      channel.rebuild(options.seed + 7000 + r);
    }
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();

    // The checksum re-derives the final rebuild's sorted code array through
    // the same batch-hash + parallel-partition kernels the channel uses.
    std::vector<std::uint64_t> codes;
    rng::uniform_code_batch(config.hash, options.seed + 7000 + rebuilds - 1,
                            pop.ids(), config.tree_height, codes);
    std::vector<std::uint64_t> scratch;
    radix_sort_u64_parallel(codes, scratch, config.tree_height,
                            build_parallel_for());

    build_table.add_row({bench::TablePrinter::num(n),
                         bench::TablePrinter::num(rebuilds),
                         code_checksum(codes)});
    if (!options.quiet) {
      std::fprintf(stderr,
                   "build n=%llu: %.0f tags/s over %llu builds (%s, %u "
                   "build threads)\n",
                   static_cast<unsigned long long>(n),
                   static_cast<double>(n * rebuilds) / wall,
                   static_cast<unsigned long long>(rebuilds),
                   to_string(simd_tier()).data(),
                   build_parallel_for() != nullptr
                       ? build_parallel_for()->workers()
                       : 1u);
    }
  }
  build_table.print();

  // --- u32-staged engine parity ----------------------------------------
  // Third table: the second sorting engine (radix_sort_u32_staged) pinned
  // byte-for-byte against std::sort ground truth, which sidesteps the gate
  // circularity — radix_sort_u64 itself routes narrow 10^7+ builds to the
  // staged engine, so it cannot serve as the referee there.  Quick stays
  // below the kU32StagedMinKeys gate (engine forced explicitly); the full
  // run adds a 2*10^7 point where radix_sort_u64's automatic routing also
  // crosses the gate, and parity covers both entry points.
  const std::vector<std::uint64_t> staged_sizes =
      quick ? std::vector<std::uint64_t>{200000ull, 1000000ull}
            : std::vector<std::uint64_t>{1000000ull, 20000000ull};
  bench::TablePrinter staged_table(
      "u32-staged build: byte parity vs comparison-sort ground truth",
      {"n", "key bits", "staged checksum", "parity"}, options.csv);
  staged_table.bind(&session.report());

  for (const std::uint64_t n : staged_sizes) {
    // SplitMix64 stream masked to 32 bits: deterministic narrow keys with
    // every byte lane active, independent of the channel machinery.
    std::vector<std::uint64_t> keys(n);
    std::uint64_t state = options.seed + 0x9e3779b97f4a7c15ULL;
    for (auto& key : keys) {
      state += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = state;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      key = (z ^ (z >> 31)) & 0xffffffffULL;
    }

    std::vector<std::uint64_t> truth = keys;
    const auto sort_start = std::chrono::steady_clock::now();
    std::sort(truth.begin(), truth.end());
    const double sort_wall = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - sort_start)
                                 .count();

    std::vector<std::uint64_t> staged = keys;
    std::vector<std::uint64_t> scratch;
    const auto staged_start = std::chrono::steady_clock::now();
    radix_sort_u32_staged(staged, scratch, 32);
    const double staged_wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      staged_start)
            .count();

    // The gated entry point: radix_sort_u64 routes here automatically at
    // kU32StagedMinKeys and must agree wherever it lands.
    std::vector<std::uint64_t> gated = keys;
    radix_sort_u64(gated, scratch, 32);

    const bool parity = staged == truth && gated == truth;
    staged_table.add_row({bench::TablePrinter::num(n),
                          bench::TablePrinter::num(std::uint64_t{32}),
                          code_checksum(staged), parity ? "ok" : "FAIL"});
    if (!options.quiet) {
      std::fprintf(stderr,
                   "staged n=%llu: %.0f keys/s (std::sort %.0f keys/s, "
                   "gate at %llu)\n",
                   static_cast<unsigned long long>(n),
                   static_cast<double>(n) / staged_wall,
                   static_cast<double>(n) / sort_wall,
                   static_cast<unsigned long long>(kU32StagedMinKeys));
    }
  }
  staged_table.print();
  return 0;
}
