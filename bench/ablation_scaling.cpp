// Ablation — asymptotic scaling: slots per estimate as the population grows
// from 10^2 to 10^6, for
//   * PET with binary search        (O(log log n) per round, constant here
//                                    because H is fixed at 32),
//   * PET with the linear walk      (O(log n) per round, like FNEB/LoF),
//   * DFSA identification           (Theta(n)),
//   * tree-walking identification   (Theta(n)).
//
// This regenerates the paper's headline complexity claim as data.
#include <cstdint>

#include "core/estimator.hpp"
#include "harness/experiment.hpp"
#include "harness/options.hpp"
#include "harness/report.hpp"
#include "harness/table.hpp"
#include "protocols/identification.hpp"
#include "runtime/trial_runner.hpp"

namespace {

struct IdentifySlots {
  double dfsa = 0;
  double tree = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace pet;
  const auto options = bench::BenchOptions::parse(
      argc, argv,
      "Scaling ablation: slots vs population size for PET (binary/linear) "
      "and the identification baselines.");
  bench::BenchSession session(options, "ablation_scaling");
  // Identification at n = 10^6 is slow-ish; a handful of runs suffices for
  // Theta(n) numbers.
  const std::uint64_t id_runs = std::min<std::uint64_t>(options.runs, 10);

  const stats::AccuracyRequirement req{0.05, 0.01};
  core::PetConfig binary;
  core::PetConfig linear;
  linear.search = core::SearchMode::kLinear;

  bench::TablePrinter table(
      "Scaling: mean slots per estimate / identification pass",
      {"n", "PET binary (Alg.3)", "PET linear (Alg.1)", "DFSA identify",
       "TreeWalk identify"},
      options.csv);
  table.bind(&session.report());

  for (const std::uint64_t n : {100ull, 1000ull, 10000ull, 100000ull,
                                1000000ull}) {
    // The per-run channel build is O(n log n); scale repetitions down for
    // the million-tag cells (slot counts are deterministic given the mode).
    const std::uint64_t pet_runs =
        n >= 100000 ? std::max<std::uint64_t>(options.runs / 10, 10)
                    : options.runs;
    const auto pet_bs =
        bench::run_pet(n, binary, req, 0, pet_runs, options.seed);
    const auto pet_lin =
        bench::run_pet(n, linear, req, 0, pet_runs, options.seed + 1);

    // The EPC Q <= 15 frame cap saturates beyond ~10^5 tags (DFSA stalls
    // with zero singletons per frame); lift the cap with the population so
    // the Theta(n) trend stays measurable.
    proto::DfsaConfig dfsa_config;
    dfsa_config.max_frame_size =
        std::max<std::uint64_t>(dfsa_config.max_frame_size, 2 * n);

    double dfsa_slots = 0;
    double tree_slots = 0;
    runtime::global_runner().run<IdentifySlots>(
        id_runs,
        [&](std::uint64_t r) {
          IdentifySlots slots;
          slots.dfsa = static_cast<double>(
              proto::identify_dfsa_sampled(n, dfsa_config,
                                           options.seed + 100 + r)
                  .ledger.total_slots());
          slots.tree = static_cast<double>(
              proto::identify_treewalk_sampled(n, proto::TreeWalkConfig{},
                                               options.seed + 200 + r)
                  .ledger.total_slots());
          return slots;
        },
        [&](std::uint64_t, IdentifySlots&& slots) {
          dfsa_slots += slots.dfsa;
          tree_slots += slots.tree;
        },
        "identification");
    dfsa_slots /= static_cast<double>(id_runs);
    tree_slots /= static_cast<double>(id_runs);

    table.add_row({bench::TablePrinter::num(n),
                   bench::TablePrinter::num(pet_bs.mean_slots_per_estimate, 0),
                   bench::TablePrinter::num(pet_lin.mean_slots_per_estimate, 0),
                   bench::TablePrinter::num(dfsa_slots, 0),
                   bench::TablePrinter::num(tree_slots, 0)});
  }
  table.print();
  return 0;
}
