// Table 4 — total time slots needed to meet the accuracy requirement with
// different confidence intervals eps (delta = 1%), PET vs FNEB vs LoF,
// n = 50 000.
//
// Expected shape (paper Section 5.3): PET needs well under half the slots
// of either baseline at every eps, and all three protocols meet the
// contract (empirical in-interval fraction >= 1 - delta).
#include <cstdint>

#include "core/estimator.hpp"
#include "harness/experiment.hpp"
#include "harness/options.hpp"
#include "harness/report.hpp"
#include "harness/table.hpp"

int main(int argc, char** argv) {
  using namespace pet;
  const auto options = bench::BenchOptions::parse(
      argc, argv,
      "Table 4: slots to meet Pr{|nhat-n| <= eps*n} >= 99% for "
      "eps in {5,10,15,20}%, PET vs FNEB vs LoF (n = 50000).");
  bench::BenchSession session(options, "table4_eps_slots");

  const std::uint64_t n = 50000;
  bench::TablePrinter table(
      "Table 4: total slots to meet the accuracy requirement, delta = 1% "
      "(n = 50000)",
      {"eps", "PET slots", "FNEB slots", "LoF slots", "PET/FNEB", "PET/LoF",
       "PET in-interval", "FNEB in-interval", "LoF in-interval"},
      options.csv);
  table.bind(&session.report());

  for (const double eps : {0.05, 0.10, 0.15, 0.20}) {
    const stats::AccuracyRequirement req{eps, 0.01};
    const auto pet = bench::run_pet(n, core::PetConfig{}, req, 0,
                                    options.runs, options.seed);
    const auto fneb = bench::run_fneb(n, proto::FnebConfig{}, req, 0,
                                      options.runs, options.seed + 1);
    const auto lof = bench::run_lof(n, proto::LofConfig{}, req, 0,
                                    options.runs, options.seed + 2);
    table.add_row(
        {bench::TablePrinter::num(eps, 2),
         bench::TablePrinter::num(pet.mean_slots_per_estimate, 0),
         bench::TablePrinter::num(fneb.mean_slots_per_estimate, 0),
         bench::TablePrinter::num(lof.mean_slots_per_estimate, 0),
         bench::TablePrinter::num(
             pet.mean_slots_per_estimate / fneb.mean_slots_per_estimate, 3),
         bench::TablePrinter::num(
             pet.mean_slots_per_estimate / lof.mean_slots_per_estimate, 3),
         bench::TablePrinter::num(pet.summary.fraction_within(eps), 3),
         bench::TablePrinter::num(fneb.summary.fraction_within(eps), 3),
         bench::TablePrinter::num(lof.summary.fraction_within(eps), 3)});
  }
  table.print();
  return 0;
}
