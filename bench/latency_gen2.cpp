// Extra bench — wall-clock estimation latency on an EPC C1G2 link.
//
// The paper reports slot counts; a deployment engineer needs seconds.  This
// harness converts the Table-4 slot budgets into air time under two Gen2
// profiles (fast dense-reader: Tari 6.25 us / Miller-4; slow conservative:
// Tari 25 us / FM0), for PET, FNEB, LoF and full DFSA identification.
#include <cstdint>

#include "channel/sampled_channel.hpp"
#include "core/estimator.hpp"
#include "harness/experiment.hpp"
#include "harness/options.hpp"
#include "harness/report.hpp"
#include "harness/table.hpp"
#include "protocols/identification.hpp"
#include "sim/gen2_timing.hpp"

namespace {

double session_seconds(const pet::sim::Gen2LinkConfig& link,
                       const pet::sim::SlotLedger& ledger,
                       std::uint64_t rounds, unsigned command_bits) {
  return pet::sim::gen2_session_us(
             link, ledger.singleton_slots + ledger.collision_slots,
             ledger.idle_slots, command_bits, 1, rounds, 32) /
         1e6;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pet;
  auto options = bench::BenchOptions::parse(
      argc, argv,
      "Gen2 wall-clock latency of one (eps, delta) = (5%, 1%) estimate of "
      "50000 tags, two PHY profiles.");
  bench::BenchSession session(options, "latency_gen2");
  options.runs = std::min<std::uint64_t>(options.runs, 50);

  const std::uint64_t n = 50000;
  const stats::AccuracyRequirement req{0.05, 0.01};

  sim::Gen2LinkConfig fast;  // Tari 6.25, Miller 4
  sim::Gen2LinkConfig slow;
  slow.tari_us = 25.0;
  slow.divide_ratio = 8.0;
  slow.miller = 1;

  proto::DfsaConfig dfsa_config;
  dfsa_config.max_frame_size = 4 * n;
  const auto dfsa =
      proto::identify_dfsa_sampled(n, dfsa_config, options.seed + 3);

  const core::PetEstimator pet_estimator(core::PetConfig{}, req);
  const proto::FnebEstimator fneb_estimator(proto::FnebConfig{}, req);
  const proto::LofEstimator lof_estimator(proto::LofConfig{}, req);

  bench::TablePrinter table(
      "Gen2 air time for one (5%, 1%) estimate of n = 50000 "
      "(fast: Tari 6.25us Miller-4; slow: Tari 25us FM0)",
      {"protocol", "slots", "fast profile (s)", "slow profile (s)"},
      options.csv);
  table.bind(&session.report());

  // Rebuild representative ledgers from one run each (slot mixes barely
  // vary across runs).
  struct Row {
    const char* name;
    sim::SlotLedger ledger;
    std::uint64_t rounds;
    unsigned command_bits;
  };
  chan::SampledChannel pet_chan(n, options.seed + 10);
  chan::SampledChannel fneb_chan(n, options.seed + 11);
  chan::SampledChannel lof_chan(n, options.seed + 12);
  const auto pet_ledger = pet_estimator.estimate(pet_chan, 1).ledger;
  const Row rows[] = {
      {"PET (32-bit mask)", pet_ledger, pet_estimator.planned_rounds(), 32},
      // Section 4.6.2's 1-bit feedback encoding: same slots, tiny commands.
      {"PET (1-bit cmd)", pet_ledger, pet_estimator.planned_rounds(), 1},
      {"FNEB", fneb_estimator.estimate(fneb_chan, 1).ledger,
       fneb_estimator.planned_rounds(), 32},
      {"LoF", lof_estimator.estimate(lof_chan, 1).ledger,
       lof_estimator.planned_rounds(), 1},
      {"DFSA identify", dfsa.ledger, dfsa.frames, 1},
  };
  for (const Row& row : rows) {
    table.add_row({row.name,
                   bench::TablePrinter::num(row.ledger.total_slots()),
                   bench::TablePrinter::num(
                       session_seconds(fast, row.ledger, row.rounds,
                                       row.command_bits), 2),
                   bench::TablePrinter::num(
                       session_seconds(slow, row.ledger, row.rounds,
                                       row.command_bits), 2)});
  }
  table.print();
  return 0;
}
