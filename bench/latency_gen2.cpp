// Extra bench — wall-clock estimation latency on an EPC C1G2 link,
// analytic vs measured MAC.
//
// The paper reports slot counts; a deployment engineer needs seconds.  The
// `ideal` rows convert the slot budgets of a perfect-detection channel into
// air time analytically (uniform command sizes, no MAC overhead) — the
// original Table-4-style accounting.  The `gen2` rows run the same
// protocols over gen2::Gen2PrefixChannel / pet::gen2 inventory, where every
// probe pays real Select/Query/QueryRep command bits and the ledger's
// airtime is accumulated slot by slot from the PHY timing model
// (sim/gen2_timing.hpp).  Two profiles: fast dense-reader (Tari 6.25 us,
// Miller-4) and slow conservative (Tari 25 us, FM0).
#include <cstdint>
#include <vector>

#include "channel/sampled_channel.hpp"
#include "common/ensure.hpp"
#include "core/estimator.hpp"
#include "gen2/channel.hpp"
#include "harness/experiment.hpp"
#include "harness/options.hpp"
#include "harness/report.hpp"
#include "harness/table.hpp"
#include "protocols/fneb.hpp"
#include "protocols/identification.hpp"
#include "protocols/lof.hpp"
#include "rng/prng.hpp"
#include "sim/gen2_timing.hpp"
#include "tags/population.hpp"

namespace {

double analytic_seconds(const pet::sim::Gen2LinkConfig& link,
                        const pet::sim::SlotLedger& ledger,
                        std::uint64_t rounds, unsigned command_bits) {
  return pet::sim::gen2_session_us(
             link, ledger.singleton_slots + ledger.collision_slots,
             ledger.idle_slots, command_bits, 1, rounds, 32) /
         1e6;
}

std::string kbits(std::uint64_t bits) {
  return pet::bench::TablePrinter::num(static_cast<double>(bits) / 1000.0, 1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pet;
  auto options = bench::BenchOptions::parse(
      argc, argv,
      "Gen2 wall-clock latency of one (eps, delta) = (10%, 5%) estimate of "
      "10000 tags: analytic ideal-MAC rows vs measured pet::gen2 rows, two "
      "PHY profiles.");
  bench::BenchSession session(options, "latency_gen2");

  const std::uint64_t n = 10000;
  const stats::AccuracyRequirement req{0.10, 0.05};

  sim::Gen2LinkConfig fast;  // Tari 6.25, Miller 4
  sim::Gen2LinkConfig slow;
  slow.tari_us = 25.0;
  slow.divide_ratio = 8.0;
  slow.miller = 1;

  const core::PetEstimator pet_estimator(core::PetConfig{}, req);
  const proto::FnebEstimator fneb_estimator(proto::FnebConfig{}, req);
  const proto::LofEstimator lof_estimator(proto::LofConfig{}, req);

  bench::TablePrinter table(
      "Air time for one (10%, 5%) estimate of n = 10000, ideal vs gen2 MAC "
      "(fast: Tari 6.25us Miller-4; slow: Tari 25us FM0)",
      {"protocol", "mac", "slots", "kbits down", "kbits up", "fast (s)",
       "slow (s)"},
      options.csv);
  table.bind(&session.report());

  // ---- ideal rows: one representative ledger each (slot mixes barely vary
  // across runs), analytic airtime.
  {
    chan::SampledChannel pet_chan(n, options.seed + 10);
    chan::SampledChannel fneb_chan(n, options.seed + 11);
    chan::SampledChannel lof_chan(n, options.seed + 12);
    proto::DfsaConfig dfsa_config;  // frame cap = Q15, same as the gen2 MAC
    const auto dfsa =
        proto::identify_dfsa_sampled(n, dfsa_config, options.seed + 3);

    struct IdealRow {
      const char* name;
      sim::SlotLedger ledger;
      std::uint64_t rounds;
      unsigned command_bits;
    };
    const IdealRow rows[] = {
        {"PET", pet_estimator.estimate(pet_chan, 1).ledger,
         pet_estimator.planned_rounds(), 32},
        {"FNEB", fneb_estimator.estimate(fneb_chan, 1).ledger,
         fneb_estimator.planned_rounds(), 32},
        {"LoF", lof_estimator.estimate(lof_chan, 1).ledger,
         lof_estimator.planned_rounds(), 1},
        {"DFSA identify", dfsa.ledger, dfsa.frames, 1},
    };
    for (const IdealRow& row : rows) {
      table.add_row(
          {row.name, "ideal", bench::TablePrinter::num(row.ledger.total_slots()),
           kbits(row.ledger.reader_bits), kbits(row.ledger.tag_bits),
           bench::TablePrinter::num(
               analytic_seconds(fast, row.ledger, row.rounds, row.command_bits),
               2),
           bench::TablePrinter::num(
               analytic_seconds(slow, row.ledger, row.rounds, row.command_bits),
               2)});
    }
  }

  // ---- gen2 rows: the same estimate run over the measured MAC, once per
  // PHY profile.  Timing never feeds the RNG streams, so the two runs must
  // agree slot for slot — only the airtime column moves.
  const auto population =
      tags::TagPopulation::generate(n, rng::derive_seed(options.seed, 0xdecaf));
  const std::vector<TagId> tags(population.ids().begin(),
                                population.ids().end());

  auto add_gen2_row = [&](const char* name, auto&& run) {
    const sim::SlotLedger on_fast = run(fast);
    const sim::SlotLedger on_slow = run(slow);
    invariant(on_fast.total_slots() == on_slow.total_slots() &&
                  on_fast.reader_bits == on_slow.reader_bits,
              "latency_gen2: PHY profile perturbed the slot sequence");
    table.add_row({name, "gen2",
                   bench::TablePrinter::num(on_fast.total_slots()),
                   kbits(on_fast.reader_bits), kbits(on_fast.tag_bits),
                   bench::TablePrinter::num(
                       static_cast<double>(on_fast.airtime_us) / 1e6, 2),
                   bench::TablePrinter::num(
                       static_cast<double>(on_slow.airtime_us) / 1e6, 2)});
  };

  auto gen2_channel = [&](const sim::Gen2LinkConfig& link) {
    gen2::Gen2ChannelConfig config;
    config.manufacturing_seed = rng::derive_seed(options.seed, 20);
    config.link = link;
    return gen2::Gen2PrefixChannel(tags, config);
  };
  add_gen2_row("PET", [&](const sim::Gen2LinkConfig& link) {
    auto channel = gen2_channel(link);
    return pet_estimator.estimate(channel, 1).ledger;
  });
  add_gen2_row("FNEB", [&](const sim::Gen2LinkConfig& link) {
    auto channel = gen2_channel(link);
    return fneb_estimator.estimate(channel, 1).ledger;
  });
  add_gen2_row("LoF", [&](const sim::Gen2LinkConfig& link) {
    auto channel = gen2_channel(link);
    return lof_estimator.estimate(channel, 1).ledger;
  });
  add_gen2_row("DFSA identify", [&](const sim::Gen2LinkConfig& link) {
    proto::Gen2DfsaOptions dfsa;
    dfsa.link = link;
    return proto::identify_gen2(n, dfsa, options.seed + 3).ledger;
  });
  add_gen2_row("DFSA identify (DFA-Q)", [&](const sim::Gen2LinkConfig& link) {
    proto::Gen2DfsaOptions dfsa;
    dfsa.dfa_backlog = true;
    dfsa.link = link;
    return proto::identify_gen2(n, dfsa, options.seed + 3).ledger;
  });

  table.print();
  return 0;
}
