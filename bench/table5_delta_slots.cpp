// Table 5 — total time slots needed to meet the accuracy requirement with
// different error probabilities delta (eps = 5%), PET vs FNEB vs LoF,
// n = 50 000.
#include <cstdint>

#include "core/estimator.hpp"
#include "harness/experiment.hpp"
#include "harness/options.hpp"
#include "harness/report.hpp"
#include "harness/table.hpp"

int main(int argc, char** argv) {
  using namespace pet;
  const auto options = bench::BenchOptions::parse(
      argc, argv,
      "Table 5: slots to meet Pr{|nhat-n| <= 0.05n} >= 1-delta for "
      "delta in {1,5,10,20}%, PET vs FNEB vs LoF (n = 50000).");
  bench::BenchSession session(options, "table5_delta_slots");

  const std::uint64_t n = 50000;
  bench::TablePrinter table(
      "Table 5: total slots to meet the accuracy requirement, eps = 5% "
      "(n = 50000)",
      {"delta", "PET slots", "FNEB slots", "LoF slots", "PET/FNEB",
       "PET/LoF", "PET in-interval", "FNEB in-interval", "LoF in-interval"},
      options.csv);
  table.bind(&session.report());

  for (const double delta : {0.01, 0.05, 0.10, 0.20}) {
    const stats::AccuracyRequirement req{0.05, delta};
    const auto pet = bench::run_pet(n, core::PetConfig{}, req, 0,
                                    options.runs, options.seed);
    const auto fneb = bench::run_fneb(n, proto::FnebConfig{}, req, 0,
                                      options.runs, options.seed + 1);
    const auto lof = bench::run_lof(n, proto::LofConfig{}, req, 0,
                                    options.runs, options.seed + 2);
    table.add_row(
        {bench::TablePrinter::num(delta, 2),
         bench::TablePrinter::num(pet.mean_slots_per_estimate, 0),
         bench::TablePrinter::num(fneb.mean_slots_per_estimate, 0),
         bench::TablePrinter::num(lof.mean_slots_per_estimate, 0),
         bench::TablePrinter::num(
             pet.mean_slots_per_estimate / fneb.mean_slots_per_estimate, 3),
         bench::TablePrinter::num(
             pet.mean_slots_per_estimate / lof.mean_slots_per_estimate, 3),
         bench::TablePrinter::num(pet.summary.fraction_within(0.05), 3),
         bench::TablePrinter::num(fneb.summary.fraction_within(0.05), 3),
         bench::TablePrinter::num(lof.summary.fraction_within(0.05), 3)});
  }
  table.print();
  return 0;
}
