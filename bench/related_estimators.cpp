// Extra bench — the related-work estimators of Section 2 at one operating
// point: USE/UPE's zero and collision estimators (which need a prior of n)
// and EZB (anonymous, prior-free), next to PET.  Quantifies the two
// drawbacks the paper credits PET with removing: prior sensitivity and
// per-round tag randomness.
#include <cstdint>

#include "core/estimator.hpp"
#include "harness/experiment.hpp"
#include "harness/options.hpp"
#include "harness/report.hpp"
#include "harness/table.hpp"

int main(int argc, char** argv) {
  using namespace pet;
  const auto options = bench::BenchOptions::parse(
      argc, argv,
      "Related-work estimators (UPE zero/collision, EZB) vs PET at "
      "n = 50000, (10%, 5%).");
  bench::BenchSession session(options, "related_estimators");

  const std::uint64_t n = 50000;
  const stats::AccuracyRequirement req{0.10, 0.05};

  bench::TablePrinter table(
      "Related estimators at n = 50000, contract (10%, 5%)",
      {"estimator", "prior n", "slots/estimate", "accuracy", "in-interval"},
      options.csv);
  table.bind(&session.report());

  const auto pet = bench::run_pet(n, core::PetConfig{}, req, 0, options.runs,
                                  options.seed);
  table.add_row({"PET (no prior)", "-",
                 bench::TablePrinter::num(pet.mean_slots_per_estimate, 0),
                 bench::TablePrinter::num(pet.summary.accuracy(), 4),
                 bench::TablePrinter::num(
                     pet.summary.fraction_within(req.epsilon), 3)});

  // UPE variants at a perfect prior, and the zero estimator at priors that
  // are 10x off in either direction.
  struct UpeCase {
    const char* name;
    double prior;
    proto::UpeVariant variant;
  };
  const UpeCase cases[] = {
      {"UPE zero est. (prior = n)", 50000.0, proto::UpeVariant::kZeroEstimator},
      {"UPE collision est. (prior = n)", 50000.0,
       proto::UpeVariant::kCollisionEstimator},
      {"UPE combined (prior = n)", 50000.0, proto::UpeVariant::kCombined},
      {"UPE zero est. (prior = n/10)", 5000.0,
       proto::UpeVariant::kZeroEstimator},
      {"UPE zero est. (prior = 10n)", 500000.0,
       proto::UpeVariant::kZeroEstimator},
  };
  for (const UpeCase& c : cases) {
    proto::UpeConfig config;
    config.expected_n = c.prior;
    config.variant = c.variant;
    const auto set = bench::run_upe(n, config, req, options.runs,
                                    options.seed + 1);
    table.add_row({c.name, bench::TablePrinter::num(c.prior, 0),
                   bench::TablePrinter::num(set.mean_slots_per_estimate, 0),
                   bench::TablePrinter::num(set.summary.accuracy(), 4),
                   bench::TablePrinter::num(
                       set.summary.fraction_within(req.epsilon), 3)});
  }

  const auto ezb = bench::run_ezb(n, proto::EzbConfig{}, req, options.runs,
                                  options.seed + 2);
  table.add_row({"EZB (anonymous, no prior)", "-",
                 bench::TablePrinter::num(ezb.mean_slots_per_estimate, 0),
                 bench::TablePrinter::num(ezb.summary.accuracy(), 4),
                 bench::TablePrinter::num(
                     ezb.summary.fraction_within(req.epsilon), 3)});
  table.print();
  return 0;
}
