// google-benchmark micro benchmarks: the primitive operations whose costs
// dominate the simulator — hash families, code generation, per-round PET
// queries on each channel substrate, and one full estimate.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "channel/exact_channel.hpp"
#include "channel/sampled_channel.hpp"
#include "channel/sorted_pet_channel.hpp"
#include "common/radix.hpp"
#include "core/estimator.hpp"
#include "obs/metrics.hpp"
#include "rng/hash_family.hpp"
#include "rng/md5.hpp"
#include "rng/prng.hpp"
#include "rng/sha1.hpp"
#include "tags/population.hpp"

namespace {

using namespace pet;

void BM_SplitMix64(benchmark::State& state) {
  rng::SplitMix64 gen(1);
  for (auto _ : state) benchmark::DoNotOptimize(gen());
}
BENCHMARK(BM_SplitMix64);

void BM_Xoshiro256(benchmark::State& state) {
  rng::Xoshiro256ss gen(1);
  for (auto _ : state) benchmark::DoNotOptimize(gen());
}
BENCHMARK(BM_Xoshiro256);

void BM_HashUniform64(benchmark::State& state) {
  const auto kind = static_cast<rng::HashKind>(state.range(0));
  std::uint64_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng::uniform64(kind, 42, ++id));
  }
  state.SetLabel(std::string(rng::to_string(kind)));
}
BENCHMARK(BM_HashUniform64)->Arg(0)->Arg(1)->Arg(2);

void BM_Md5Digest64Bytes(benchmark::State& state) {
  const std::string msg(64, 'x');
  for (auto _ : state) benchmark::DoNotOptimize(rng::Md5::hash(msg));
}
BENCHMARK(BM_Md5Digest64Bytes);

void BM_Sha1Digest64Bytes(benchmark::State& state) {
  const std::string msg(64, 'x');
  for (auto _ : state) benchmark::DoNotOptimize(rng::Sha1::hash(msg));
}
BENCHMARK(BM_Sha1Digest64Bytes);

std::vector<TagId> tags_for(std::int64_t n) {
  const auto pop =
      tags::TagPopulation::generate(static_cast<std::size_t>(n), 7);
  return {pop.ids().begin(), pop.ids().end()};
}

void BM_PetRoundExactChannel(benchmark::State& state) {
  chan::ExactChannel channel(tags_for(state.range(0)));
  const core::PetEstimator estimator(core::PetConfig{}, {0.1, 0.05});
  std::uint64_t r = 0;
  for (auto _ : state) {
    const BitCode path =
        rng::uniform_code(rng::HashKind::kMix64, ++r, 1, 32);
    channel.begin_round(chan::RoundConfig{path, 0, false, 32, 32});
    benchmark::DoNotOptimize(estimator.run_round(channel));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PetRoundExactChannel)->Range(1000, 1000000)->Complexity();

void BM_PetRoundSortedChannel(benchmark::State& state) {
  chan::SortedPetChannel channel(tags_for(state.range(0)));
  const core::PetEstimator estimator(core::PetConfig{}, {0.1, 0.05});
  std::uint64_t r = 0;
  for (auto _ : state) {
    const BitCode path =
        rng::uniform_code(rng::HashKind::kMix64, ++r, 1, 32);
    channel.begin_round(chan::RoundConfig{path, 0, false, 32, 32});
    benchmark::DoNotOptimize(estimator.run_round(channel));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PetRoundSortedChannel)->Range(1000, 1000000)->Complexity();

void BM_PetRoundSampledChannel(benchmark::State& state) {
  chan::SampledChannel channel(static_cast<std::uint64_t>(state.range(0)), 3);
  const core::PetEstimator estimator(core::PetConfig{}, {0.1, 0.05});
  std::uint64_t r = 0;
  for (auto _ : state) {
    const BitCode path =
        rng::uniform_code(rng::HashKind::kMix64, ++r, 1, 32);
    channel.begin_round(chan::RoundConfig{path, 0, false, 32, 32});
    benchmark::DoNotOptimize(estimator.run_round(channel));
  }
}
BENCHMARK(BM_PetRoundSampledChannel)->Range(1000, 1000000);

void BM_FullEstimate50kTags(benchmark::State& state) {
  chan::SortedPetChannel channel(tags_for(50000));
  const core::PetEstimator estimator(core::PetConfig{}, {0.05, 0.01});
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.estimate(channel, ++seed));
  }
}
BENCHMARK(BM_FullEstimate50kTags)->Unit(benchmark::kMillisecond);

// -- obs overhead (docs/observability.md records the numbers) -------------
//
// BM_ObsCounterAddDisabled is the cost every instrumentation site pays when
// observability is compiled in but off: one relaxed load + branch.
// BM_ObsCounterAddEnabled adds the thread-local shard fetch_add.
// BM_PetRoundObs{Off,Counters} measure the real hot path — a full PET round
// on the sorted channel — under both levels; their ratio is the "<= 2%
// disabled overhead" acceptance number (compare Off against a
// -DPET_OBS=OFF build of the same benchmark for the compiled-out floor).

void BM_ObsCounterAddDisabled(benchmark::State& state) {
  obs::set_level(obs::Level::kOff);
  const obs::Counter counter =
      obs::MetricsRegistry::instance().counter("micro.obs.disabled");
  for (auto _ : state) {
    if (obs::counters_enabled()) counter.add();
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ObsCounterAddDisabled);

void BM_ObsCounterAddEnabled(benchmark::State& state) {
  obs::set_level(obs::Level::kCounters);
  const obs::Counter counter =
      obs::MetricsRegistry::instance().counter("micro.obs.enabled");
  for (auto _ : state) {
    if (obs::counters_enabled()) counter.add();
    benchmark::ClobberMemory();
  }
  obs::set_level(obs::Level::kOff);
}
BENCHMARK(BM_ObsCounterAddEnabled);

void pet_round_at_level(benchmark::State& state, obs::Level level) {
  obs::set_level(level);
  chan::SortedPetChannel channel(tags_for(100000));
  const core::PetEstimator estimator(core::PetConfig{}, {0.1, 0.05});
  std::uint64_t r = 0;
  for (auto _ : state) {
    const BitCode path = rng::uniform_code(rng::HashKind::kMix64, ++r, 1, 32);
    channel.begin_round(chan::RoundConfig{path, 0, false, 32, 32});
    benchmark::DoNotOptimize(estimator.run_round(channel));
  }
  obs::set_level(obs::Level::kOff);
}

void BM_PetRoundObsOff(benchmark::State& state) {
  pet_round_at_level(state, obs::Level::kOff);
}
BENCHMARK(BM_PetRoundObsOff);

void BM_PetRoundObsCounters(benchmark::State& state) {
  pet_round_at_level(state, obs::Level::kCounters);
}
BENCHMARK(BM_PetRoundObsCounters);

// -- fast-round pipeline (docs/performance.md records the numbers) --------
//
// BM_SortedBuildStdSort vs BM_SortedBuildRadix isolate the per-trial channel
// construction the sweeps pay for every fresh manufacturing seed: the
// historical element-wise hash + std::sort against the batched hash +
// key-width-capped LSD radix sort.  BM_PetRoundProbed vs BM_PetRoundOracle
// isolate one estimation round answered by per-probe binary searches vs the
// DepthOracle's synthesized probes.  BM_UniformCodeBatch is the hashing
// floor construction can never drop below.

void BM_SortedBuildStdSort(benchmark::State& state) {
  const auto ids = tags_for(state.range(0));
  std::vector<std::uint64_t> codes;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    codes.clear();
    codes.reserve(ids.size());
    for (const TagId id : ids) {
      codes.push_back(
          rng::uniform_code(rng::HashKind::kMix64, ++seed, id, 32).value());
    }
    std::sort(codes.begin(), codes.end());
    benchmark::DoNotOptimize(codes.data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SortedBuildStdSort)->Range(1000, 1000000)->Complexity();

void BM_SortedBuildRadix(benchmark::State& state) {
  const auto ids = tags_for(state.range(0));
  std::vector<std::uint64_t> codes;
  std::vector<std::uint64_t> scratch;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    rng::uniform_code_batch(rng::HashKind::kMix64, ++seed, ids, 32, codes);
    radix_sort_u64(codes, scratch, 32);
    benchmark::DoNotOptimize(codes.data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SortedBuildRadix)->Range(1000, 1000000)->Complexity();

void BM_UniformCodeBatch(benchmark::State& state) {
  const auto ids = tags_for(state.range(0));
  std::vector<std::uint64_t> codes;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    rng::uniform_code_batch(rng::HashKind::kMix64, ++seed, ids, 32, codes);
    benchmark::DoNotOptimize(codes.data());
  }
}
BENCHMARK(BM_UniformCodeBatch)->Range(1000, 1000000);

void BM_PetRoundProbed(benchmark::State& state) {
  chan::SortedPetChannel channel(tags_for(state.range(0)));
  const core::PetEstimator estimator(core::PetConfig{}, {0.1, 0.05});
  std::uint64_t r = 0;
  for (auto _ : state) {
    const BitCode path = rng::uniform_code(rng::HashKind::kMix64, ++r, 1, 32);
    channel.begin_round(chan::RoundConfig{path, 0, false, 32, 32});
    benchmark::DoNotOptimize(estimator.run_round(channel));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PetRoundProbed)->Range(1000, 1000000)->Complexity();

void BM_PetRoundOracle(benchmark::State& state) {
  chan::SortedPetChannel channel(tags_for(state.range(0)));
  const core::PetEstimator estimator(core::PetConfig{}, {0.1, 0.05});
  std::uint64_t r = 0;
  for (auto _ : state) {
    const BitCode path = rng::uniform_code(rng::HashKind::kMix64, ++r, 1, 32);
    channel.begin_round(chan::RoundConfig{path, 0, false, 32, 32});
    benchmark::DoNotOptimize(estimator.run_round_synth(channel));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PetRoundOracle)->Range(1000, 1000000)->Complexity();

}  // namespace

BENCHMARK_MAIN();
