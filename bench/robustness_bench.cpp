// Extra bench — robustness outside the paper's lossless-channel assumption
// (Section 5.1): estimation bias and contract violation under
//   (a) reply loss (busy slots read as idle -> depth shrinks -> n̂ biased
//       low), and
//   (b) noise floor (idle slots read as busy -> n̂ biased high),
// measured at the device level for PET.
#include <cstdint>

#include "channel/device_channel.hpp"
#include "core/estimator.hpp"
#include "harness/options.hpp"
#include "harness/table.hpp"
#include "rng/prng.hpp"
#include "stats/accuracy.hpp"
#include "tags/population.hpp"

int main(int argc, char** argv) {
  using namespace pet;
  auto options = bench::BenchOptions::parse(
      argc, argv,
      "PET robustness to link impairments (device-level, n = 2000, "
      "(10%, 5%) contract).");
  options.runs = std::min<std::uint64_t>(options.runs, 20);

  const std::uint64_t n = 2000;
  const stats::AccuracyRequirement req{0.10, 0.05};
  const core::PetEstimator estimator(core::PetConfig{}, req);
  const auto pop = tags::TagPopulation::generate(n, 7);

  auto sweep = [&](bench::TablePrinter& table, bool losses) {
    for (const double level : {0.0, 0.01, 0.05, 0.1, 0.25, 0.5}) {
      stats::TrialSummary summary(static_cast<double>(n));
      for (std::uint64_t run = 0; run < options.runs; ++run) {
        chan::DeviceChannelConfig device;
        device.manufacturing_seed = rng::derive_seed(options.seed, run);
        device.impairments.seed = rng::derive_seed(options.seed, 500 + run);
        if (losses) {
          device.impairments.reply_loss_prob = level;
        } else {
          device.impairments.false_busy_prob = level;
        }
        chan::DeviceChannel channel(pop.ids(), chan::DeviceKind::kPet,
                                    device);
        summary.add(estimator
                        .estimate(channel,
                                  rng::derive_seed(options.seed, 1000 + run))
                        .n_hat);
      }
      table.add_row({bench::TablePrinter::num(level, 2),
                     bench::TablePrinter::num(summary.accuracy(), 4),
                     bench::TablePrinter::num(
                         summary.fraction_within(req.epsilon), 3)});
    }
  };

  {
    bench::TablePrinter table(
        "Robustness (a): reply loss probability -> downward bias",
        {"loss prob", "accuracy nhat/n", "in-interval"}, options.csv);
    sweep(table, true);
    table.print();
  }
  {
    bench::TablePrinter table(
        "Robustness (b): false-busy (noise) probability -> upward bias",
        {"noise prob", "accuracy nhat/n", "in-interval"}, options.csv);
    sweep(table, false);
    table.print();
  }
  return 0;
}
