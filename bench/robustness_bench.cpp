// Extra bench — robustness outside the paper's lossless-channel assumption
// (Section 5.1).  Vanilla PET vs the hardened pipeline
// (core::RobustPetEstimator: k-of-m re-read voting + calibrated trimmed-mean
// fusion + KS channel-health diagnostic) across three impairment families:
//   (a) iid reply loss   (busy slots read idle  -> n̂ biased low),
//   (b) noise floor      (idle slots read busy  -> n̂ biased high),
//   (c) Gilbert-Elliott bursts (correlated loss -> depth mixture wider than
//       any theoretical law; the KS diagnostic's home turf).
// Each row reports both estimators' accuracy and contract compliance, the
// re-read slots the defense paid, and how often the diagnostic declared the
// (10%, 5%) contract at risk — the honest answer when the channel is too
// far gone to fix.
#include <cstdint>
#include <functional>

#include "channel/device_channel.hpp"
#include "core/estimator.hpp"
#include "core/robust_estimator.hpp"
#include "harness/options.hpp"
#include "harness/report.hpp"
#include "harness/table.hpp"
#include "rng/prng.hpp"
#include "runtime/trial_runner.hpp"
#include "stats/accuracy.hpp"
#include "tags/population.hpp"

namespace {

/// Everything one impaired trial produces; folded in trial order by the
/// runner, so the sweep is bit-identical for any --threads.
struct ImpairedTrial {
  double vanilla_n_hat = 0.0;
  double robust_n_hat = 0.0;
  std::uint64_t rereads = 0;
  bool at_risk = false;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace pet;
  auto options = bench::BenchOptions::parse(
      argc, argv,
      "PET robustness to link impairments: vanilla vs RobustPetEstimator "
      "(device-level, n = 2000, (10%, 5%) contract).");
  options.runs = std::min<std::uint64_t>(options.runs, 10);
  bench::BenchSession session(options, "robustness_bench");

  const std::uint64_t n = 2000;
  const stats::AccuracyRequirement req{0.10, 0.05};
  const core::PetEstimator vanilla(core::PetConfig{}, req);
  const auto pop = tags::TagPopulation::generate(n, 7);

  const std::vector<std::string> columns{
      "level",        "vanilla nhat/n", "vanilla in-eps", "robust nhat/n",
      "robust in-eps", "rereads/run",    "at-risk frac"};

  // One sweep = one impairment family: `apply` writes the level into the
  // impairments, `robust_config` picks the matching vote (OR against loss,
  // majority against noise).
  auto sweep = [&](bench::TablePrinter& table,
                   const core::RobustPetConfig& robust_config,
                   const std::function<void(sim::ChannelImpairments&, double)>&
                       apply) {
    const core::RobustPetEstimator robust(robust_config, req);
    for (const double level : {0.0, 0.01, 0.05, 0.1, 0.25, 0.5}) {
      stats::TrialSummary vanilla_summary(static_cast<double>(n));
      stats::TrialSummary robust_summary(static_cast<double>(n));
      std::uint64_t rereads = 0;
      std::uint64_t at_risk = 0;
      runtime::global_runner().run<ImpairedTrial>(
          options.runs,
          [&](std::uint64_t run) {
            chan::DeviceChannelConfig device;
            device.manufacturing_seed = rng::derive_seed(options.seed, run);
            device.impairments.seed =
                rng::derive_seed(options.seed, 500 + run);
            apply(device.impairments, level);
            const std::uint64_t est_seed =
                rng::derive_seed(options.seed, 1000 + run);
            ImpairedTrial trial;
            {
              chan::DeviceChannel channel(pop.ids(), chan::DeviceKind::kPet,
                                          device);
              trial.vanilla_n_hat = vanilla.estimate(channel, est_seed).n_hat;
            }
            {
              chan::DeviceChannel channel(pop.ids(), chan::DeviceKind::kPet,
                                          device);
              const auto result = robust.estimate(channel, est_seed);
              trial.robust_n_hat = result.n_hat();
              trial.rereads = result.reread_slots;
              trial.at_risk = result.diagnostic.contract_at_risk();
            }
            return trial;
          },
          [&](std::uint64_t, ImpairedTrial&& trial) {
            vanilla_summary.add(trial.vanilla_n_hat);
            robust_summary.add(trial.robust_n_hat);
            rereads += trial.rereads;
            if (trial.at_risk) ++at_risk;
          },
          "robustness");
      const double runs = static_cast<double>(options.runs);
      table.add_row(
          {bench::TablePrinter::num(level, 2),
           bench::TablePrinter::num(vanilla_summary.accuracy(), 4),
           bench::TablePrinter::num(
               vanilla_summary.fraction_within(req.epsilon), 3),
           bench::TablePrinter::num(robust_summary.accuracy(), 4),
           bench::TablePrinter::num(
               robust_summary.fraction_within(req.epsilon), 3),
           bench::TablePrinter::num(static_cast<double>(rereads) / runs, 1),
           bench::TablePrinter::num(static_cast<double>(at_risk) / runs,
                                    3)});
    }
  };

  {
    // Loss-dominated and no noise floor: a busy read can only be genuine,
    // so the vote is an OR over up to 5 reads.
    core::RobustPetConfig config;
    config.vote_reads = 5;
    config.vote_quorum = 1;
    bench::TablePrinter table(
        "Robustness (a): iid reply loss -> vanilla biased low",
        columns, options.csv);
    table.bind(&session.report());
    sweep(table, config, [](sim::ChannelImpairments& imp, double level) {
      imp.reply_loss_prob = level;
    });
    table.print();
  }
  {
    // Noise-dominated: spurious busy reads must be outvoted by a majority.
    core::RobustPetConfig config;
    config.vote_reads = 5;
    config.vote_quorum = 3;
    bench::TablePrinter table(
        "Robustness (b): false-busy noise -> vanilla biased high",
        columns, options.csv);
    table.bind(&session.report());
    sweep(table, config, [](sim::ChannelImpairments& imp, double level) {
      imp.false_busy_prob = level;
    });
    table.print();
  }
  {
    // Bursty loss at a fixed mean burst length (1 / 0.2 = 5 slots); the
    // level is the stationary fraction of slots spent in the bad state.
    core::RobustPetConfig config;
    config.vote_reads = 5;
    config.vote_quorum = 1;
    bench::TablePrinter table(
        "Robustness (c): Gilbert-Elliott bursts (level = bad-state "
        "fraction) -> depth mixture",
        columns, options.csv);
    table.bind(&session.report());
    sweep(table, config, [](sim::ChannelImpairments& imp, double level) {
      if (level <= 0.0) return;
      const double p_bad_to_good = 0.2;
      imp.burst = sim::GilbertElliottParams{
          p_bad_to_good * level / (1.0 - level), p_bad_to_good, 0.0, 1.0,
          false};
    });
    table.print();
  }
  return 0;
}
