// Fast-round pipeline conformance: the DepthOracle-synthesized probes,
// batched hashing, radix sort, rebuild(), and the per-thread channel arenas
// must be *byte-identical* to the reference path — same EstimateResult,
// same SlotLedger down to the floating-point airtime sum — for every
// (n, H, seed) including the degenerate populations n = 0 and n = 1 and
// the H = 64 prefix-range wrap (docs/performance.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <optional>
#include <vector>

#include "channel/arena.hpp"
#include "channel/exact_channel.hpp"
#include "channel/sampled_channel.hpp"
#include "channel/sorted_pet_channel.hpp"
#include "common/bitcode.hpp"
#include "common/fastpath.hpp"
#include "common/radix.hpp"
#include "core/estimator.hpp"
#include "core/robust_estimator.hpp"
#include "rng/hash_family.hpp"
#include "rng/prng.hpp"
#include "tags/population.hpp"

namespace {

using namespace pet;

// Restores the process-wide fast-path switch on scope exit so a failing
// assertion cannot leak a disabled fast path into later tests.
class FastPathGuard {
 public:
  explicit FastPathGuard(bool on) : prev_(fast_path_enabled()) {
    set_fast_path(on);
  }
  ~FastPathGuard() { set_fast_path(prev_); }
  FastPathGuard(const FastPathGuard&) = delete;
  FastPathGuard& operator=(const FastPathGuard&) = delete;

 private:
  bool prev_;
};

// Bitwise double comparison: "byte-identical" includes NaN payloads and
// signed zeros, which EXPECT_DOUBLE_EQ would blur.
std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

void expect_ledger_identical(const sim::SlotLedger& got,
                             const sim::SlotLedger& want) {
  EXPECT_EQ(got.idle_slots, want.idle_slots);
  EXPECT_EQ(got.singleton_slots, want.singleton_slots);
  EXPECT_EQ(got.collision_slots, want.collision_slots);
  EXPECT_EQ(got.reader_bits, want.reader_bits);
  EXPECT_EQ(got.tag_bits, want.tag_bits);
  EXPECT_EQ(bits(got.airtime_us), bits(want.airtime_us));
  EXPECT_EQ(got.retry_slots, want.retry_slots);
  EXPECT_EQ(got.erased_replies, want.erased_replies);
  EXPECT_EQ(got.noise_busy_slots, want.noise_busy_slots);
  EXPECT_EQ(got.outage_slots, want.outage_slots);
}

void expect_result_identical(const core::EstimateResult& got,
                             const core::EstimateResult& want) {
  EXPECT_EQ(bits(got.n_hat), bits(want.n_hat));
  EXPECT_EQ(got.rounds, want.rounds);
  EXPECT_EQ(bits(got.mean_depth), bits(want.mean_depth));
  EXPECT_EQ(got.depths, want.depths);
  expect_ledger_identical(got.ledger, want.ledger);
}

std::vector<TagId> make_ids(std::size_t n, std::uint64_t seed) {
  const auto pop = tags::TagPopulation::generate(n, seed);
  return {pop.ids().begin(), pop.ids().end()};
}

constexpr core::SearchMode kModes[] = {core::SearchMode::kLinear,
                                       core::SearchMode::kBinaryPaper,
                                       core::SearchMode::kBinaryStrict};

// ---------------------------------------------------------------------------
// End-to-end: fast path vs the ExactChannel reference back end.

TEST(FastPath, MatchesExactChannelAcrossRandomCases) {
  rng::SplitMix64 gen(0xfa57ull);
  const std::size_t sizes[] = {0, 1, 2, 3, 17, 100, 777, 5000};
  const unsigned heights[] = {3, 8, 32, 63, 64};

  for (int c = 0; c < 40; ++c) {
    const std::size_t n = sizes[gen() % std::size(sizes)];
    const unsigned height = heights[gen() % std::size(heights)];
    const core::SearchMode mode = kModes[c % 3];
    const std::uint64_t manufacturing_seed = gen();
    const std::uint64_t estimate_seed = gen();
    const std::uint64_t rounds = 1 + gen() % 12;
    SCOPED_TRACE(testing::Message()
                 << "case " << c << ": n=" << n << " H=" << height
                 << " mode=" << to_string(mode) << " mseed="
                 << manufacturing_seed << " eseed=" << estimate_seed
                 << " m=" << rounds);

    core::PetConfig config;
    config.tree_height = height;
    config.search = mode;
    const core::PetEstimator estimator(config, {0.05, 0.01});
    const auto ids = make_ids(n, 0xdecafULL + static_cast<std::uint64_t>(c));

    core::EstimateResult reference;
    {
      FastPathGuard guard(false);
      chan::ExactChannelConfig exact_config;
      exact_config.tree_height = height;
      exact_config.manufacturing_seed = manufacturing_seed;
      chan::ExactChannel channel(ids, exact_config);
      reference =
          estimator.estimate_with_rounds(channel, rounds, estimate_seed);
    }
    core::EstimateResult fast;
    {
      FastPathGuard guard(true);
      chan::SortedPetChannelConfig sorted_config;
      sorted_config.tree_height = height;
      sorted_config.manufacturing_seed = manufacturing_seed;
      chan::SortedPetChannel channel(ids, sorted_config);
      fast = estimator.estimate_with_rounds(channel, rounds, estimate_seed);
    }
    expect_result_identical(fast, reference);
  }
}

TEST(FastPath, FastAndSlowSortedChannelBitIdentical) {
  rng::SplitMix64 gen(0x50f7ull);
  const std::size_t sizes[] = {0, 1, 5, 64, 1023, 4096};
  const unsigned heights[] = {4, 16, 32, 64};

  for (int c = 0; c < 30; ++c) {
    const std::size_t n = sizes[gen() % std::size(sizes)];
    const unsigned height = heights[gen() % std::size(heights)];
    const core::SearchMode mode = kModes[c % 3];
    const std::uint64_t manufacturing_seed = gen();
    const std::uint64_t estimate_seed = gen();
    const std::uint64_t rounds = 1 + gen() % 20;
    SCOPED_TRACE(testing::Message()
                 << "case " << c << ": n=" << n << " H=" << height
                 << " mode=" << to_string(mode));

    core::PetConfig config;
    config.tree_height = height;
    config.search = mode;
    const core::PetEstimator estimator(config, {0.05, 0.01});
    const auto ids = make_ids(n, 0xface5ULL + static_cast<std::uint64_t>(c));
    chan::SortedPetChannelConfig sorted_config;
    sorted_config.tree_height = height;
    sorted_config.manufacturing_seed = manufacturing_seed;

    core::EstimateResult slow;
    {
      FastPathGuard guard(false);
      chan::SortedPetChannel channel(ids, sorted_config);
      slow = estimator.estimate_with_rounds(channel, rounds, estimate_seed);
    }
    core::EstimateResult fast;
    {
      FastPathGuard guard(true);
      chan::SortedPetChannel channel(ids, sorted_config);
      fast = estimator.estimate_with_rounds(channel, rounds, estimate_seed);
    }
    expect_result_identical(fast, slow);
  }
}

// ---------------------------------------------------------------------------
// Robust estimator: voting re-reads must charge retry_slots identically
// whether probes are issued or synthesized through the oracle.

TEST(FastPath, RobustVotingParityIncludingRetryAccounting) {
  rng::SplitMix64 gen(0x0b57ull);
  struct Case {
    std::size_t n;
    unsigned height;
    std::uint64_t retry_budget;
  };
  const Case cases[] = {
      {0, 32, UINT64_MAX},  {1, 32, UINT64_MAX}, {500, 32, UINT64_MAX},
      {500, 32, 5},         {2000, 64, UINT64_MAX}, {2000, 64, 3},
      {100, 8, UINT64_MAX},
  };

  for (const Case& test_case : cases) {
    const std::uint64_t manufacturing_seed = gen();
    const std::uint64_t estimate_seed = gen();
    const std::uint64_t rounds = 1 + gen() % 10;
    SCOPED_TRACE(testing::Message()
                 << "n=" << test_case.n << " H=" << test_case.height
                 << " budget=" << test_case.retry_budget);

    core::RobustPetConfig config;
    config.base.tree_height = test_case.height;
    config.vote_reads = 3;
    config.vote_quorum = 2;
    config.retry_budget_slots = test_case.retry_budget;
    const core::RobustPetEstimator estimator(config, {0.05, 0.01});
    const auto ids = make_ids(test_case.n, 0x0b57e11ULL);
    chan::SortedPetChannelConfig sorted_config;
    sorted_config.tree_height = test_case.height;
    sorted_config.manufacturing_seed = manufacturing_seed;

    core::RobustEstimateResult slow;
    {
      FastPathGuard guard(false);
      chan::SortedPetChannel channel(ids, sorted_config);
      slow = estimator.estimate_with_rounds(channel, rounds, estimate_seed);
    }
    core::RobustEstimateResult fast;
    {
      FastPathGuard guard(true);
      chan::SortedPetChannel channel(ids, sorted_config);
      fast = estimator.estimate_with_rounds(channel, rounds, estimate_seed);
    }

    expect_result_identical(fast.base, slow.base);
    EXPECT_EQ(fast.reread_slots, slow.reread_slots);
    EXPECT_EQ(fast.overturned_probes, slow.overturned_probes);
    EXPECT_EQ(fast.retry_budget_exhausted, slow.retry_budget_exhausted);
    EXPECT_EQ(bits(fast.interval.lo), bits(slow.interval.lo));
    EXPECT_EQ(bits(fast.interval.hi), bits(slow.interval.hi));
    EXPECT_EQ(bits(fast.diagnostic.ks_distance),
              bits(slow.diagnostic.ks_distance));
    EXPECT_EQ(fast.diagnostic.health, slow.diagnostic.health);
  }
}

// ---------------------------------------------------------------------------
// DepthOracle unit behaviour.

TEST(FastPath, RoundDepthMatchesBruteForceMaxLcp) {
  rng::SplitMix64 gen(0xdeb7ull);
  const std::size_t sizes[] = {0, 1, 2, 33, 1000};
  const unsigned heights[] = {8, 32, 64};

  for (int c = 0; c < 60; ++c) {
    const std::size_t n = sizes[gen() % std::size(sizes)];
    const unsigned height = heights[gen() % std::size(heights)];
    const std::uint64_t manufacturing_seed = gen();
    const auto ids = make_ids(n, 0x1c9ULL + static_cast<std::uint64_t>(c));
    chan::SortedPetChannelConfig config;
    config.tree_height = height;
    config.manufacturing_seed = manufacturing_seed;
    chan::SortedPetChannel channel(ids, config);

    // Random paths, plus the all-ones path that exercises the H = 64 wrap.
    std::uint64_t path_value = rng::uniform64(rng::HashKind::kMix64, gen(), 1);
    if (height < 64) path_value >>= (64 - height);
    if (c % 5 == 0) {
      path_value = (height == 64) ? ~std::uint64_t{0}
                                  : (std::uint64_t{1} << height) - 1;
    }
    channel.begin_round(chan::RoundConfig{BitCode(path_value, height), 0,
                                          false, height, height});

    unsigned want = 0;
    for (const TagId id : ids) {
      const std::uint64_t code =
          rng::uniform_code(rng::HashKind::kMix64, manufacturing_seed, id,
                            height)
              .value();
      const std::uint64_t diff = code ^ path_value;
      const unsigned lcp =
          diff == 0 ? height
                    : static_cast<unsigned>(std::countl_zero(diff)) -
                          (64 - height);
      want = std::max(want, lcp);
    }
    SCOPED_TRACE(testing::Message() << "n=" << n << " H=" << height
                                    << " path=" << path_value);
    EXPECT_EQ(channel.round_depth(), want);
  }
}

TEST(FastPath, SynthProbeMatchesQueryPrefixProbeForProbe) {
  rng::SplitMix64 gen(0x9e0bull);
  const std::size_t sizes[] = {0, 1, 2, 100, 2048};
  const unsigned heights[] = {1, 8, 32, 64};

  for (int c = 0; c < 40; ++c) {
    const std::size_t n = sizes[gen() % std::size(sizes)];
    const unsigned height = heights[gen() % std::size(heights)];
    const std::uint64_t manufacturing_seed = gen();
    const auto ids = make_ids(n, 0xa11ULL + static_cast<std::uint64_t>(c));
    chan::SortedPetChannelConfig config;
    config.tree_height = height;
    config.manufacturing_seed = manufacturing_seed;
    chan::SortedPetChannel probed(ids, config);
    chan::SortedPetChannel synthesized(ids, config);

    std::uint64_t path_value = rng::uniform64(rng::HashKind::kMix64, gen(), 1);
    if (height < 64) path_value >>= (64 - height);
    if (c % 4 == 0) {
      // All-ones path: every prefix range [lo, lo + 2^(H-len)) at H = 64
      // reaches the top of the code space, exercising the hi == 0 wrap.
      path_value = (height == 64) ? ~std::uint64_t{0}
                                  : (std::uint64_t{1} << height) - 1;
    }
    const chan::RoundConfig round{BitCode(path_value, height), 0, false,
                                  height, height};
    probed.begin_round(round);
    synthesized.begin_round(round);
    SCOPED_TRACE(testing::Message() << "n=" << n << " H=" << height
                                    << " path=" << path_value);
    for (unsigned len = 0; len <= height; ++len) {
      EXPECT_EQ(synthesized.synth_probe(len), probed.query_prefix(len))
          << "len=" << len;
    }
    expect_ledger_identical(synthesized.ledger(), probed.ledger());
  }
}

// ---------------------------------------------------------------------------
// Sorting and hashing engines.

TEST(FastPath, RadixSortMatchesStdSortFuzz) {
  rng::SplitMix64 gen(0x4ad1eULL);
  std::vector<std::uint64_t> values;
  std::vector<std::uint64_t> scratch;

  for (int c = 0; c < 200; ++c) {
    const std::size_t n = static_cast<std::size_t>(gen() % 4097);
    const unsigned key_bits = 1 + static_cast<unsigned>(gen() % 64);
    const std::uint64_t mask = key_bits == 64
                                   ? ~std::uint64_t{0}
                                   : (std::uint64_t{1} << key_bits) - 1;
    values.resize(n);
    switch (c % 5) {
      case 0:  // uniform over the key range
        for (auto& v : values) v = gen() & mask;
        break;
      case 1:  // heavy duplicates
        for (auto& v : values) v = gen() % 7;
        break;
      case 2:  // already sorted
        for (std::size_t i = 0; i < n; ++i) values[i] = i & mask;
        break;
      case 3:  // reverse sorted
        for (std::size_t i = 0; i < n; ++i) values[i] = (n - i) & mask;
        break;
      default:  // constant
        for (auto& v : values) v = 0x5eedULL & mask;
        break;
    }
    std::vector<std::uint64_t> want = values;
    std::sort(want.begin(), want.end());
    radix_sort_u64(values, scratch, key_bits);
    ASSERT_EQ(values, want) << "case " << c << " n=" << n
                            << " key_bits=" << key_bits;
  }
}

TEST(FastPath, UniformCodeBatchMatchesElementwiseHash) {
  const rng::HashKind kinds[] = {rng::HashKind::kMix64, rng::HashKind::kMd5,
                                 rng::HashKind::kSha1};
  const unsigned widths[] = {1, 13, 32, 64};
  const auto ids = make_ids(257, 0xba7c4ULL);
  std::vector<std::uint64_t> batch;

  rng::SplitMix64 gen(0xc0deull);
  for (const rng::HashKind kind : kinds) {
    for (const unsigned width : widths) {
      const std::uint64_t seed = gen();
      rng::uniform_code_batch(kind, seed, ids, width, batch);
      ASSERT_EQ(batch.size(), ids.size());
      for (std::size_t i = 0; i < ids.size(); ++i) {
        EXPECT_EQ(batch[i],
                  rng::uniform_code(kind, seed, ids[i], width).value())
            << to_string(kind) << " width=" << width << " i=" << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Reuse machinery: rebuild() and the per-thread arenas.

TEST(FastPath, RebuildEquivalentToFreshConstruction) {
  const auto ids = make_ids(1500, 0x5eedULL);
  core::PetConfig config;
  const core::PetEstimator estimator(config, {0.05, 0.01});

  for (const bool fast : {false, true}) {
    FastPathGuard guard(fast);
    SCOPED_TRACE(testing::Message() << "fast=" << fast);
    chan::SortedPetChannelConfig first;
    first.manufacturing_seed = 111;
    chan::SortedPetChannelConfig second;
    second.manufacturing_seed = 222;

    chan::SortedPetChannel reused(ids, first);
    const auto before = estimator.estimate_with_rounds(reused, 8, 42);
    reused.rebuild(222);
    reused.reset_ledger();
    const auto after = estimator.estimate_with_rounds(reused, 8, 43);

    chan::SortedPetChannel fresh_first(ids, first);
    expect_result_identical(
        before, estimator.estimate_with_rounds(fresh_first, 8, 42));
    chan::SortedPetChannel fresh_second(ids, second);
    expect_result_identical(
        after, estimator.estimate_with_rounds(fresh_second, 8, 43));
    EXPECT_EQ(reused.tag_count(), ids.size());
  }
}

TEST(FastPath, SortedChannelArenaMatchesFreshChannels) {
  FastPathGuard guard(true);
  const auto ids = make_ids(800, 0xa4e4aULL);
  core::PetConfig config;
  const core::PetEstimator estimator(config, {0.05, 0.01});

  for (std::uint64_t trial = 0; trial < 4; ++trial) {
    chan::SortedPetChannelConfig channel_config;
    channel_config.manufacturing_seed = 1000 + trial;
    chan::SortedPetChannel& arena =
        chan::arena_sorted_pet_channel(ids, channel_config);
    const auto got = estimator.estimate_with_rounds(arena, 6, 77 + trial);
    arena.flush_obs();

    chan::SortedPetChannel fresh(ids, channel_config);
    const auto want = estimator.estimate_with_rounds(fresh, 6, 77 + trial);
    SCOPED_TRACE(testing::Message() << "trial " << trial);
    expect_result_identical(got, want);
  }
}

TEST(FastPath, SampledChannelArenaMatchesFreshChannels) {
  FastPathGuard guard(true);
  core::PetConfig config;
  const core::PetEstimator estimator(config, {0.05, 0.01});

  for (std::uint64_t trial = 0; trial < 4; ++trial) {
    const std::uint64_t n = 100 + 37 * trial;
    const std::uint64_t chan_seed = 500 + trial;
    chan::SampledChannel& arena = chan::arena_sampled_channel(n, chan_seed);
    const auto got = estimator.estimate_with_rounds(arena, 6, 13 + trial);

    chan::SampledChannel fresh(n, chan_seed);
    const auto want = estimator.estimate_with_rounds(fresh, 6, 13 + trial);
    SCOPED_TRACE(testing::Message() << "trial " << trial);
    expect_result_identical(got, want);
  }
}

}  // namespace
