// Edge-case tests for the Gen2 PHY timing model (sim/gen2_timing.hpp):
// parameter bounds, degenerate sessions, and the command-bit accounting
// the gen2 MAC charges per slot.  The nominal-profile behaviour is covered
// in gen2_energy_test.cpp.
#include <gtest/gtest.h>

#include "common/ensure.hpp"
#include "sim/gen2_timing.hpp"

namespace pet::sim {
namespace {

TEST(Gen2TimingBounds, TariEndpointsAreInSpec) {
  Gen2LinkConfig link;
  link.tari_us = 6.25;
  EXPECT_NO_THROW(link.validate());
  link.tari_us = 25.0;
  EXPECT_NO_THROW(link.validate());
  link.tari_us = 6.24;
  EXPECT_THROW(link.validate(), PreconditionError);
  link.tari_us = 25.01;
  EXPECT_THROW(link.validate(), PreconditionError);
}

TEST(Gen2TimingBounds, MillerFactorsAreThePowersOfTwo) {
  Gen2LinkConfig link;
  for (const unsigned m : {1u, 2u, 4u, 8u}) {
    link.miller = m;
    EXPECT_NO_THROW(link.validate());
  }
  for (const unsigned m : {0u, 3u, 16u}) {
    link.miller = m;
    EXPECT_THROW(link.validate(), PreconditionError);
  }
}

TEST(Gen2TimingBounds, TrcalMultiplierEndpoints) {
  Gen2LinkConfig link;
  link.trcal_multiplier = 1.1;
  EXPECT_NO_THROW(link.validate());
  link.trcal_multiplier = 3.0;
  EXPECT_NO_THROW(link.validate());
  link.trcal_multiplier = 1.0;
  EXPECT_THROW(link.validate(), PreconditionError);
  link.trcal_multiplier = 3.1;
  EXPECT_THROW(link.validate(), PreconditionError);
}

TEST(Gen2TimingBounds, Fm0BitsAreMillerBitsDividedByM) {
  Gen2LinkConfig fm0;
  fm0.miller = 1;
  Gen2LinkConfig miller4;
  miller4.miller = 4;
  // Same BLF (Tari/DR/TRcal identical), so one Miller-4 bit takes exactly
  // four FM0 bit times.
  EXPECT_DOUBLE_EQ(miller4.tag_bit_us(), 4.0 * fm0.tag_bit_us());
}

TEST(Gen2TimingSession, ZeroSlotsZeroRoundsCostNothing) {
  const Gen2LinkConfig link;
  EXPECT_DOUBLE_EQ(gen2_session_us(link, 0, 0, 22, 16, 0, 32), 0.0);
}

TEST(Gen2TimingSession, ZeroSlotSessionStillPaysRoundBroadcasts) {
  const Gen2LinkConfig link;
  const double one_round = gen2_session_us(link, 0, 0, 22, 16, 1, 32);
  const double expected =
      link.preamble_tari * link.tari_us + 32 * link.reader_bit_us();
  EXPECT_DOUBLE_EQ(one_round, expected);
  EXPECT_DOUBLE_EQ(gen2_session_us(link, 0, 0, 22, 16, 8, 32),
                   8.0 * one_round);
}

TEST(Gen2TimingSession, DecomposesIntoSlotCosts) {
  const Gen2LinkConfig link;
  const double busy = gen2_slot_us(link, 22, 16);
  const double idle = gen2_slot_us(link, 22, 0);
  const double total = gen2_session_us(link, 3, 5, 22, 16, 0, 0);
  EXPECT_NEAR(total, 3.0 * busy + 5.0 * idle, 1e-9);
}

TEST(Gen2CommandAccounting, StandardCommandSizes) {
  EXPECT_EQ(kGen2CommandBits.query, 22u);
  EXPECT_EQ(kGen2CommandBits.query_rep, 4u);
  EXPECT_EQ(kGen2CommandBits.query_adjust, 9u);
  EXPECT_EQ(kGen2CommandBits.ack, 18u);
  EXPECT_EQ(kGen2CommandBits.rn16, 16u);
  EXPECT_EQ(kGen2CommandBits.select(0), 45u);
  EXPECT_EQ(kGen2CommandBits.select(32), 77u);
}

TEST(Gen2CommandAccounting, SlotDurationGrowsWithCommandAndReplyBits) {
  const Gen2LinkConfig link;
  // One extra downlink bit costs exactly one average PIE bit time.
  EXPECT_NEAR(gen2_slot_us(link, 23, 0) - gen2_slot_us(link, 22, 0),
              link.reader_bit_us(), 1e-9);
  // One extra uplink bit costs exactly one backscatter bit time.
  EXPECT_NEAR(gen2_slot_us(link, 22, 17) - gen2_slot_us(link, 22, 16),
              link.tag_bit_us(), 1e-9);
  // A QueryRep slot is strictly cheaper than a Query slot.
  EXPECT_LT(gen2_slot_us(link, kGen2CommandBits.query_rep, 16),
            gen2_slot_us(link, kGen2CommandBits.query, 16));
}

TEST(Gen2CommandAccounting, ZeroBitCommandIsJustPreambleAndTimeouts) {
  const Gen2LinkConfig link;
  const double idle = gen2_slot_us(link, 0, 0);
  EXPECT_DOUBLE_EQ(idle, link.preamble_tari * link.tari_us + link.t1_us() +
                             3.0 / link.blf_per_us());
}

}  // namespace
}  // namespace pet::sim
