// Tests for src/channel: the four back ends and, critically, their
// equivalence — SortedPetChannel and DeviceChannel must be *bit-identical*
// to ExactChannel, and SampledChannel must be distributionally identical.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "channel/channel.hpp"
#include "channel/device_channel.hpp"
#include "channel/exact_channel.hpp"
#include "channel/sampled_channel.hpp"
#include "channel/sorted_pet_channel.hpp"
#include "common/ensure.hpp"
#include "rng/prng.hpp"
#include "stats/ks.hpp"
#include "tags/population.hpp"

namespace pet::chan {
namespace {

std::vector<TagId> make_tags(std::size_t n, std::uint64_t seed) {
  const auto pop = tags::TagPopulation::generate(n, seed);
  return {pop.ids().begin(), pop.ids().end()};
}

BitCode path_for(std::uint64_t seed, unsigned h) {
  return rng::uniform_code(rng::HashKind::kMix64, seed, 0x700dULL, h);
}

/// Walk all prefix lengths of one round and collect the busy pattern.
std::vector<bool> busy_pattern(PrefixChannel& channel, const BitCode& path,
                               unsigned h) {
  channel.begin_round(RoundConfig{path, 0, false, 32, 32});
  std::vector<bool> out;
  for (unsigned len = 0; len <= h; ++len) out.push_back(channel.query_prefix(len));
  return out;
}

TEST(ExactChannel, PaperFig1Example) {
  // The paper's worked example: 4 tags coded 0001, 0110, 1011, 1110 and the
  // estimating path 0011.  We cannot choose hash outputs, so this test uses
  // a tiny custom check through the public API instead: find 4 tag IDs
  // whose 4-bit codes reproduce the figure, then verify the query pattern.
  const unsigned h = 4;
  ExactChannelConfig config;
  config.tree_height = h;
  config.manufacturing_seed = 0;

  std::vector<TagId> chosen;
  const std::vector<std::uint64_t> wanted = {0b0001, 0b0110, 0b1011, 0b1110};
  for (const std::uint64_t target : wanted) {
    for (std::uint64_t id = 0;; ++id) {
      if (rng::uniform_code(config.hash, config.manufacturing_seed, id, h)
              .value() == target) {
        chosen.push_back(TagId{id});
        break;
      }
    }
  }

  ExactChannel channel(chosen, config);
  channel.begin_round(RoundConfig{BitCode::parse("0011"), 0, false, 4, 4});
  EXPECT_TRUE(channel.query_prefix(1));   // 0***: two tags (collision)
  EXPECT_TRUE(channel.query_prefix(2));   // 00**: tag 0001
  EXPECT_FALSE(channel.query_prefix(3));  // 001*: the paper's idle slot
  const auto& ledger = channel.ledger();
  EXPECT_EQ(ledger.collision_slots, 1u);
  EXPECT_EQ(ledger.singleton_slots, 1u);
  EXPECT_EQ(ledger.idle_slots, 1u);
}

TEST(ExactChannel, BusyPatternIsMonotone) {
  const auto tags = make_tags(200, 1);
  ExactChannel channel(tags);
  for (std::uint64_t r = 0; r < 20; ++r) {
    const auto pattern = busy_pattern(channel, path_for(r, 32), 32);
    for (std::size_t i = 1; i < pattern.size(); ++i) {
      EXPECT_LE(pattern[i], pattern[i - 1])
          << "busy(len) must be monotone nonincreasing";
    }
    EXPECT_TRUE(pattern[0]) << "len 0 probe hears every tag";
  }
}

TEST(ExactChannel, EmptyPopulationAlwaysIdle) {
  ExactChannel channel(std::vector<TagId>{});
  const auto pattern = busy_pattern(channel, path_for(0, 32), 32);
  for (const bool busy : pattern) EXPECT_FALSE(busy);
}

TEST(ExactChannel, RehashModeChangesDepthAcrossSeeds) {
  const auto tags = make_tags(100, 2);
  ExactChannelConfig config;
  config.preloaded_codes = false;
  ExactChannel channel(tags, config);
  const BitCode path = path_for(9, 32);

  auto depth_for_seed = [&](std::uint64_t seed) {
    channel.begin_round(RoundConfig{path, seed, true, 32, 32});
    unsigned d = 0;
    while (d < 32 && channel.query_prefix(d + 1)) ++d;
    return d;
  };
  // Same seed twice: identical; different seeds: very likely different.
  EXPECT_EQ(depth_for_seed(5), depth_for_seed(5));
  bool any_difference = false;
  const unsigned base = depth_for_seed(100);
  for (std::uint64_t s = 101; s < 120 && !any_difference; ++s) {
    any_difference = depth_for_seed(s) != base;
  }
  EXPECT_TRUE(any_difference);
}

TEST(ExactChannel, RangeQueryCountsMatchBruteForce) {
  const auto tags = make_tags(500, 3);
  ExactChannel channel(tags);
  const RangeFrameConfig frame{77, 1 << 20, 32, 32};
  channel.begin_range_frame(frame);

  // Brute force the same hashes.
  std::uint64_t min_slot = frame.frame_size + 1;
  for (const TagId id : tags) {
    min_slot = std::min(min_slot, rng::uniform_slot(rng::HashKind::kMix64,
                                                    frame.seed, id,
                                                    frame.frame_size));
  }
  EXPECT_FALSE(channel.query_range(min_slot - 1));
  EXPECT_TRUE(channel.query_range(min_slot));
  EXPECT_TRUE(channel.query_range(frame.frame_size));
}

TEST(ExactChannel, FrameOccupancySumsToPopulation) {
  const auto tags = make_tags(300, 4);
  ExactChannel channel(tags);
  const auto outcomes =
      channel.run_frame(FrameConfig{5, 64, 1.0, false, 32, 1});
  ASSERT_EQ(outcomes.size(), 64u);
  const auto& ledger = channel.ledger();
  EXPECT_EQ(ledger.total_slots(), 64u);
  EXPECT_EQ(ledger.tag_bits, 300u) << "every tag replies exactly once";
}

TEST(ExactChannel, GeometricFrameLoadsLowLevels) {
  const auto tags = make_tags(1000, 5);
  ExactChannel channel(tags);
  const auto outcomes =
      channel.run_frame(FrameConfig{6, 32, 1.0, true, 32, 1});
  // With 1000 tags, levels 1..6 hold ~500/250/125/63/31/16 tags: all busy.
  for (int i = 0; i < 6; ++i) {
    EXPECT_NE(outcomes[static_cast<std::size_t>(i)], SlotOutcome::kIdle)
        << "level " << i + 1;
  }
  // Levels beyond ~16 are idle with overwhelming probability.
  EXPECT_EQ(outcomes[31], SlotOutcome::kIdle);
}

TEST(SortedPetChannel, BitIdenticalToExactChannel) {
  for (const unsigned h : {8u, 16u, 32u, 64u}) {
    const auto tags = make_tags(777, h);
    ExactChannelConfig exact_config;
    exact_config.tree_height = h;
    SortedPetChannelConfig sorted_config;
    sorted_config.tree_height = h;
    ExactChannel exact(tags, exact_config);
    SortedPetChannel sorted(tags, sorted_config);

    for (std::uint64_t r = 0; r < 25; ++r) {
      const BitCode path = path_for(r, h);
      const auto a = busy_pattern(exact, path, h);
      const auto b = busy_pattern(sorted, path, h);
      EXPECT_EQ(a, b) << "H=" << h << " round " << r;
    }
    // Ledgers must agree slot for slot, including singleton/collision
    // classification and uplink bit counts.
    EXPECT_EQ(exact.ledger().idle_slots, sorted.ledger().idle_slots);
    EXPECT_EQ(exact.ledger().singleton_slots, sorted.ledger().singleton_slots);
    EXPECT_EQ(exact.ledger().collision_slots, sorted.ledger().collision_slots);
    EXPECT_EQ(exact.ledger().tag_bits, sorted.ledger().tag_bits);
    EXPECT_EQ(exact.ledger().reader_bits, sorted.ledger().reader_bits);
  }
}

TEST(SortedPetChannel, RejectsRehashRounds) {
  const auto tags = make_tags(10, 1);
  SortedPetChannel channel(tags);
  EXPECT_THROW(
      channel.begin_round(RoundConfig{path_for(0, 32), 1, true, 32, 32}),
      PreconditionError);
}

TEST(DeviceChannel, BitIdenticalToExactChannel) {
  const auto tags = make_tags(150, 6);
  ExactChannel exact(tags);
  DeviceChannel device(tags, DeviceKind::kPet);

  for (std::uint64_t r = 0; r < 10; ++r) {
    const BitCode path = path_for(r, 32);
    EXPECT_EQ(busy_pattern(exact, path, 32), busy_pattern(device, path, 32))
        << "round " << r;
  }
  EXPECT_EQ(exact.ledger().idle_slots, device.ledger().idle_slots);
  EXPECT_EQ(exact.ledger().singleton_slots, device.ledger().singleton_slots);
  EXPECT_EQ(exact.ledger().collision_slots, device.ledger().collision_slots);
}

TEST(DeviceChannel, FnebRangeAgreesWithExact) {
  const auto tags = make_tags(120, 7);
  ExactChannel exact(tags);
  DeviceChannel device(tags, DeviceKind::kFneb);
  const RangeFrameConfig frame{13, 4096, 32, 32};
  exact.begin_range_frame(frame);
  device.begin_range_frame(frame);
  for (std::uint64_t bound = 1; bound <= 4096; bound *= 2) {
    EXPECT_EQ(exact.query_range(bound), device.query_range(bound))
        << "bound " << bound;
  }
}

TEST(DeviceChannel, LofFrameAgreesWithExact) {
  const auto tags = make_tags(200, 8);
  ExactChannel exact(tags);
  DeviceChannel device(tags, DeviceKind::kLof);
  const FrameConfig frame{21, 32, 1.0, true, 32, 1};
  EXPECT_EQ(exact.run_frame(frame), device.run_frame(frame));
}

TEST(DeviceChannel, TagCostLedgerTracksWork) {
  const auto tags = make_tags(50, 9);
  DeviceChannel device(tags, DeviceKind::kPet);
  const BitCode path = path_for(3, 32);
  device.begin_round(RoundConfig{path, 0, false, 32, 32});
  (void)device.query_prefix(1);
  (void)device.query_prefix(2);
  const auto cost = device.total_tag_cost();
  EXPECT_EQ(cost.hash_evaluations, 0u) << "preloaded tags never hash";
  EXPECT_EQ(cost.prefix_compares, 100u) << "every tag compares every probe";
  EXPECT_GT(cost.command_bits_heard, 0u);
}

TEST(DeviceChannel, MismatchedProtocolUseIsRejected) {
  const auto tags = make_tags(5, 10);
  DeviceChannel device(tags, DeviceKind::kPet);
  EXPECT_THROW(device.query_range(1), PreconditionError);
  EXPECT_THROW((void)device.run_frame(FrameConfig{1, 8, 1.0, true, 32, 1}),
               PreconditionError);
}

// ---------------------------------------------------------------------------
// SampledChannel distributional equivalence.

TEST(SampledChannel, DepthDistributionMatchesExact) {
  constexpr std::size_t kTrials = 3000;
  constexpr std::uint64_t kTags = 400;

  // Exact: fresh codes per round (rehash mode) — the process the sampler
  // models.
  ExactChannelConfig config;
  config.preloaded_codes = false;
  ExactChannel exact(make_tags(kTags, 11), config);
  SampledChannel sampled(kTags, 99);

  auto depth_of = [](PrefixChannel& channel) {
    unsigned d = 0;
    while (d < 32 && channel.query_prefix(d + 1)) ++d;
    return static_cast<double>(d);
  };

  std::vector<double> exact_depths;
  std::vector<double> sampled_depths;
  for (std::uint64_t t = 0; t < kTrials; ++t) {
    exact.begin_round(RoundConfig{path_for(t, 32), t + 1, true, 32, 32});
    exact_depths.push_back(depth_of(exact));
    sampled.begin_round(RoundConfig{path_for(t, 32), t + 1, false, 32, 32});
    sampled_depths.push_back(depth_of(sampled));
  }
  const double d = stats::ks_statistic(exact_depths, sampled_depths);
  EXPECT_LT(d, stats::ks_critical_value(kTrials, kTrials, 0.001));
}

TEST(SampledChannel, FirstNonemptyDistributionMatchesExact) {
  constexpr std::size_t kTrials = 3000;
  constexpr std::uint64_t kTags = 250;
  constexpr std::uint64_t kFrame = 1 << 16;

  ExactChannel exact(make_tags(kTags, 12));
  SampledChannel sampled(kTags, 55);

  auto first_nonempty = [&](RangeChannel& channel) {
    std::uint64_t lo = 1;
    std::uint64_t hi = kFrame;
    if (!channel.query_range(kFrame)) return static_cast<double>(kFrame + 1);
    while (lo < hi) {
      const std::uint64_t mid = lo + (hi - lo) / 2;
      if (channel.query_range(mid)) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return static_cast<double>(lo);
  };

  std::vector<double> exact_x;
  std::vector<double> sampled_x;
  for (std::uint64_t t = 0; t < kTrials; ++t) {
    exact.begin_range_frame(RangeFrameConfig{t + 1, kFrame, 32, 32});
    exact_x.push_back(first_nonempty(exact));
    sampled.begin_range_frame(RangeFrameConfig{t + 1, kFrame, 32, 32});
    sampled_x.push_back(first_nonempty(sampled));
  }
  const double d = stats::ks_statistic(exact_x, sampled_x);
  EXPECT_LT(d, stats::ks_critical_value(kTrials, kTrials, 0.001));
}

TEST(SampledChannel, GeometricFrameFirstZeroMatchesExact) {
  constexpr std::size_t kTrials = 2500;
  constexpr std::uint64_t kTags = 300;

  ExactChannel exact(make_tags(kTags, 13));
  SampledChannel sampled(kTags, 66);

  auto first_zero = [](const std::vector<SlotOutcome>& outcomes) {
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      if (outcomes[i] == SlotOutcome::kIdle) return static_cast<double>(i);
    }
    return static_cast<double>(outcomes.size());
  };

  std::vector<double> exact_z;
  std::vector<double> sampled_z;
  const FrameConfig frame_template{0, 32, 1.0, true, 32, 1};
  for (std::uint64_t t = 0; t < kTrials; ++t) {
    FrameConfig frame = frame_template;
    frame.seed = t + 1;
    exact_z.push_back(first_zero(exact.run_frame(frame)));
    sampled_z.push_back(first_zero(sampled.run_frame(frame)));
  }
  const double d = stats::ks_statistic(exact_z, sampled_z);
  EXPECT_LT(d, stats::ks_critical_value(kTrials, kTrials, 0.001));
}

TEST(SampledChannel, UniformFramePersistenceThinsLoad) {
  SampledChannel sampled(10000, 3);
  const auto dense = sampled.run_frame(FrameConfig{1, 256, 1.0, false, 32, 1});
  const auto thin = sampled.run_frame(FrameConfig{2, 256, 0.01, false, 32, 1});
  auto idle_count = [](const std::vector<SlotOutcome>& v) {
    return std::count(v.begin(), v.end(), SlotOutcome::kIdle);
  };
  EXPECT_EQ(idle_count(dense), 0) << "load 39 saturates every slot";
  EXPECT_GT(idle_count(thin), 100) << "1% persistence nearly empties it";
}

TEST(SampledChannel, ZeroTagsAreAlwaysIdle) {
  SampledChannel sampled(0, 1);
  sampled.begin_round(RoundConfig{path_for(1, 32), 0, false, 32, 32});
  EXPECT_FALSE(sampled.query_prefix(0));
  EXPECT_FALSE(sampled.query_prefix(1));
  sampled.begin_range_frame(RangeFrameConfig{1, 100, 32, 32});
  EXPECT_FALSE(sampled.query_range(100));
  const auto outcomes = sampled.run_frame(FrameConfig{1, 8, 1.0, false, 32, 1});
  for (const auto o : outcomes) EXPECT_EQ(o, SlotOutcome::kIdle);
}

TEST(SampledChannel, SetTagCountTakesEffectNextRound) {
  SampledChannel sampled(0, 2);
  sampled.begin_round(RoundConfig{path_for(1, 32), 0, false, 32, 32});
  EXPECT_FALSE(sampled.query_prefix(1));
  sampled.set_tag_count(1u << 20);
  sampled.begin_round(RoundConfig{path_for(2, 32), 0, false, 32, 32});
  EXPECT_TRUE(sampled.query_prefix(1)) << "2^20 tags: prefix 1 busy w.h.p.";
}

}  // namespace
}  // namespace pet::chan
