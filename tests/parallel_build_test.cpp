// Parallel MSB radix partition conformance (src/common/radix.cpp,
// src/runtime/parallel_exec.cpp): one build's key space split across
// workers must sort to the byte-identical array the serial engine produces
// — for any worker count, any chunk geometry, and the adversarial key
// shapes that stress the partition (all-equal keys, one hot MSB bucket,
// pre-sorted, reverse-sorted).  At the channel level, rebuild(seed) through
// a registered build executor must leave every estimate bit-identical to
// the serial path, including the H = 64 wrap cases fastpath_test pins.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "channel/sorted_pet_channel.hpp"
#include "common/parallel.hpp"
#include "common/radix.hpp"
#include "core/estimator.hpp"
#include "rng/prng.hpp"
#include "runtime/parallel_exec.hpp"
#include "runtime/thread_pool.hpp"
#include "tags/population.hpp"

namespace {

using namespace pet;

// Deterministic inline executor: same fixed chunk partition as the pool
// implementation, run on the calling thread.  Lets the battery sweep
// worker counts (including pathological ones) without spinning up pools.
class InlineParallelFor final : public ParallelFor {
 public:
  explicit InlineParallelFor(unsigned workers) : workers_(workers) {}

  [[nodiscard]] unsigned workers() const noexcept override {
    return workers_;
  }

  void run(std::size_t n,
           const std::function<void(unsigned, std::size_t, std::size_t)>& fn)
      override {
    for (unsigned w = 0; w < workers_; ++w) {
      const std::size_t begin = chunk_begin(n, workers_, w);
      const std::size_t end = chunk_begin(n, workers_, w + 1);
      if (begin != end) fn(w, begin, end);
    }
  }

 private:
  unsigned workers_;
};

// Restores serial builds on scope exit: a failing assertion must not leak
// a registered build pool into unrelated tests.
class BuildParallelismGuard {
 public:
  explicit BuildParallelismGuard(unsigned threads) {
    runtime::configure_build_parallelism(threads);
  }
  ~BuildParallelismGuard() { runtime::configure_build_parallelism(1); }
  BuildParallelismGuard(const BuildParallelismGuard&) = delete;
  BuildParallelismGuard& operator=(const BuildParallelismGuard&) = delete;
};

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

void expect_result_identical(const core::EstimateResult& got,
                             const core::EstimateResult& want) {
  EXPECT_EQ(bits(got.n_hat), bits(want.n_hat));
  EXPECT_EQ(got.rounds, want.rounds);
  EXPECT_EQ(bits(got.mean_depth), bits(want.mean_depth));
  EXPECT_EQ(got.depths, want.depths);
  EXPECT_EQ(got.ledger.idle_slots, want.ledger.idle_slots);
  EXPECT_EQ(got.ledger.singleton_slots, want.ledger.singleton_slots);
  EXPECT_EQ(got.ledger.collision_slots, want.ledger.collision_slots);
  EXPECT_EQ(got.ledger.reader_bits, want.ledger.reader_bits);
  EXPECT_EQ(got.ledger.tag_bits, want.ledger.tag_bits);
  EXPECT_EQ(bits(got.ledger.airtime_us), bits(want.ledger.airtime_us));
}

std::vector<TagId> make_ids(std::size_t n, std::uint64_t seed) {
  const auto pop = tags::TagPopulation::generate(n, seed);
  return {pop.ids().begin(), pop.ids().end()};
}

// Adversarial key generators.  Sizes sit above the serial-fallback
// threshold so the partition actually engages.
std::vector<std::uint64_t> adversarial_keys(int shape, std::size_t n,
                                            unsigned key_bits,
                                            rng::SplitMix64& gen) {
  const std::uint64_t mask = key_bits == 64
                                 ? ~std::uint64_t{0}
                                 : (std::uint64_t{1} << key_bits) - 1;
  std::vector<std::uint64_t> keys(n);
  switch (shape) {
    case 0:  // uniform over the key range
      for (auto& k : keys) k = gen() & mask;
      break;
    case 1:  // all-equal keys: one bucket holds everything, zero low spread
      for (auto& k : keys) k = 0x5eedULL & mask;
      break;
    case 2: {  // one hot MSB bucket: 99% share the top digit, 1% scattered
      const std::uint64_t hot_top = (mask >> 1) & ~(mask >> 8);
      for (std::size_t i = 0; i < n; ++i) {
        keys[i] = (i % 100 == 0) ? (gen() & mask)
                                 : (hot_top | (gen() & (mask >> 8)));
      }
      break;
    }
    case 3:  // pre-sorted
      for (std::size_t i = 0; i < n; ++i) keys[i] = (i * 7919) & mask;
      std::sort(keys.begin(), keys.end());
      break;
    default:  // reverse-sorted
      for (std::size_t i = 0; i < n; ++i) keys[i] = (i * 104729) & mask;
      std::sort(keys.begin(), keys.end(), std::greater<>());
      break;
  }
  return keys;
}

TEST(ParallelBuild, PartitionMatchesSerialSortAcrossShapesAndWorkers) {
  rng::SplitMix64 rng_gen(0x9a12a11e1ULL);
  const unsigned key_bit_choices[] = {9, 13, 16, 32, 48, 64};
  const std::size_t sizes[] = {16384, 20000, 70000};
  const unsigned worker_counts[] = {2, 3, 8, 64};

  for (int shape = 0; shape < 5; ++shape) {
    for (const std::size_t n : sizes) {
      const unsigned key_bits =
          key_bit_choices[rng_gen() % std::size(key_bit_choices)];
      const auto keys = adversarial_keys(shape, n, key_bits, rng_gen);

      std::vector<std::uint64_t> want = keys;
      std::vector<std::uint64_t> scratch;
      radix_sort_u64(want, scratch, key_bits);

      for (const unsigned workers : worker_counts) {
        InlineParallelFor executor(workers);
        std::vector<std::uint64_t> values = keys;
        std::vector<std::uint64_t> parallel_scratch;
        RadixPartitionStats stats;
        radix_sort_u64_parallel(values, parallel_scratch, key_bits,
                                &executor, &stats);
        ASSERT_EQ(values, want) << "shape=" << shape << " n=" << n
                                << " key_bits=" << key_bits
                                << " workers=" << workers;
        EXPECT_EQ(stats.workers, workers);
        EXPECT_GE(stats.buckets_used, 1u);
        EXPECT_LE(stats.max_bucket, n);
        if (shape == 1) EXPECT_EQ(stats.buckets_used, 1u);
      }
    }
  }
}

TEST(ParallelBuild, SmallInputsAndNarrowKeysFallBackToSerial) {
  rng::SplitMix64 gen(0xfa11bacULL);
  InlineParallelFor executor(8);
  for (const std::size_t n : {std::size_t{0}, std::size_t{1},
                              std::size_t{1000}, std::size_t{16383}}) {
    std::vector<std::uint64_t> values(n);
    for (auto& v : values) v = gen() & 0xffffffffULL;
    std::vector<std::uint64_t> want = values;
    std::vector<std::uint64_t> scratch, want_scratch;
    radix_sort_u64(want, want_scratch, 32);
    RadixPartitionStats stats;
    radix_sort_u64_parallel(values, scratch, 32, &executor, &stats);
    ASSERT_EQ(values, want) << "n=" << n;
    EXPECT_EQ(stats.workers, 1u) << "n=" << n << " should fall back";
  }
  // key_bits <= 8: nothing below the MSB digit to sort in parallel.
  std::vector<std::uint64_t> values(50000);
  for (auto& v : values) v = gen() & 0xff;
  std::vector<std::uint64_t> want = values;
  std::vector<std::uint64_t> scratch, want_scratch;
  radix_sort_u64(want, want_scratch, 8);
  RadixPartitionStats stats;
  radix_sort_u64_parallel(values, scratch, 8, &executor, &stats);
  ASSERT_EQ(values, want);
  EXPECT_EQ(stats.workers, 1u);
}

TEST(ParallelBuild, NullExecutorIsTheSerialSort) {
  rng::SplitMix64 gen(0x0ULL);
  std::vector<std::uint64_t> values(30000);
  for (auto& v : values) v = gen();
  std::vector<std::uint64_t> want = values;
  std::vector<std::uint64_t> scratch, want_scratch;
  radix_sort_u64(want, want_scratch, 64);
  RadixPartitionStats stats;
  radix_sort_u64_parallel(values, scratch, 64, nullptr, &stats);
  EXPECT_EQ(values, want);
  EXPECT_EQ(stats.workers, 1u);
}

// Channel-level property: rebuild(seed) through the registered pool
// executor is byte-identical to the serial build at threads 1/2/8 — same
// estimates, same ledger bits, including H = 64 (the wrap heights
// fastpath_test's generators cover) and a population large enough to
// engage the partition.
TEST(ParallelBuild, RebuildByteIdenticalAtAnyThreadCount) {
  const unsigned heights[] = {32, 64};
  const std::size_t n = 20000;
  core::PetConfig config;
  const core::PetEstimator estimator(config, {0.05, 0.01});

  for (const unsigned height : heights) {
    const auto ids = make_ids(n, 0xc0ffeeULL + height);
    chan::SortedPetChannelConfig chan_config;
    chan_config.tree_height = height;
    chan_config.manufacturing_seed = 0xaaaULL;
    core::PetConfig pet_config;
    pet_config.tree_height = height;
    const core::PetEstimator h_estimator(pet_config, {0.05, 0.01});

    core::EstimateResult serial_first, serial_second;
    {
      BuildParallelismGuard guard(1);
      chan::SortedPetChannel channel(ids, chan_config);
      serial_first = h_estimator.estimate_with_rounds(channel, 8, 42);
      channel.rebuild(0xbbbULL);
      channel.reset_ledger();
      serial_second = h_estimator.estimate_with_rounds(channel, 8, 43);
    }

    for (const unsigned threads : {2u, 8u}) {
      SCOPED_TRACE(testing::Message()
                   << "H=" << height << " threads=" << threads);
      BuildParallelismGuard guard(threads);
      ASSERT_NE(build_parallel_for(), nullptr);
      chan::SortedPetChannel channel(ids, chan_config);
      const auto first = h_estimator.estimate_with_rounds(channel, 8, 42);
      channel.rebuild(0xbbbULL);
      channel.reset_ledger();
      const auto second = h_estimator.estimate_with_rounds(channel, 8, 43);
      expect_result_identical(first, serial_first);
      expect_result_identical(second, serial_second);
    }
  }
}

// Nested-context safety: a build issued from inside a pool task must see a
// single-worker executor (serial build), so per-trial rebuilds inside a
// parallel sweep never queue behind their own sweep.
TEST(ParallelBuild, BuildsInsidePoolTasksStaySerial) {
  BuildParallelismGuard guard(8);
  ASSERT_EQ(runtime::build_parallelism(), 8u);
  runtime::ThreadPool pool(2);
  auto future = pool.submit([] {
    EXPECT_TRUE(runtime::ThreadPool::on_worker_thread());
    EXPECT_EQ(runtime::build_parallelism(), 1u);
    // And a real sort from this context still lands the right answer.
    rng::SplitMix64 gen(0x17ea1ULL);
    std::vector<std::uint64_t> values(20000);
    for (auto& v : values) v = gen() & 0xffffffffULL;
    std::vector<std::uint64_t> want = values;
    std::vector<std::uint64_t> scratch, want_scratch;
    radix_sort_u64(want, want_scratch, 32);
    RadixPartitionStats stats;
    radix_sort_u64_parallel(values, scratch, 32, build_parallel_for(),
                            &stats);
    EXPECT_EQ(values, want);
    EXPECT_EQ(stats.workers, 1u);
  });
  future.get();
  EXPECT_FALSE(runtime::ThreadPool::on_worker_thread());
}

// The registered pool executor agrees with the inline reference executor
// on the exact same key set — i.e. real cross-thread scatter produces the
// same bytes as the deterministic single-thread walk of the same chunks.
TEST(ParallelBuild, PoolExecutorMatchesInlineExecutor) {
  rng::SplitMix64 gen(0x9001ULL);
  std::vector<std::uint64_t> keys(70000);
  for (auto& k : keys) k = gen();

  InlineParallelFor inline_exec(4);
  std::vector<std::uint64_t> want = keys;
  std::vector<std::uint64_t> want_scratch;
  radix_sort_u64_parallel(want, want_scratch, 64, &inline_exec);

  BuildParallelismGuard guard(4);
  ASSERT_NE(build_parallel_for(), nullptr);
  std::vector<std::uint64_t> values = keys;
  std::vector<std::uint64_t> scratch;
  RadixPartitionStats stats;
  radix_sort_u64_parallel(values, scratch, 64, build_parallel_for(), &stats);
  EXPECT_EQ(values, want);
  EXPECT_EQ(stats.workers, 4u);
}

// --- u32-staged second engine ----------------------------------------------
// radix_sort_u32_staged is the 10^7+/narrow-key engine radix_sort_u64
// auto-routes to above kU32StagedMinKeys.  A sorted u64 array is unique, so
// the two engines must agree byte-for-byte; calling the staged engine
// directly lets the battery pin that at fuzz-friendly sizes without paying
// for 10^7-element arrays.

TEST(StagedEngine, ByteParityWithU64EngineAcrossShapesAndKeyBits) {
  rng::SplitMix64 gen(0x57a6edULL);
  const unsigned key_bit_choices[] = {8, 9, 16, 24, 32};
  const std::size_t sizes[] = {2, 17, 1000, 16384, 70000};

  for (int shape = 0; shape < 5; ++shape) {
    for (const std::size_t n : sizes) {
      for (const unsigned key_bits : key_bit_choices) {
        const auto keys = adversarial_keys(shape, n, key_bits, gen);

        std::vector<std::uint64_t> want = keys;
        std::vector<std::uint64_t> want_scratch;
        radix_sort_u64(want, want_scratch, key_bits);

        std::vector<std::uint64_t> values = keys;
        std::vector<std::uint64_t> scratch;
        radix_sort_u32_staged(values, scratch, key_bits);
        ASSERT_EQ(values, want) << "shape=" << shape << " n=" << n
                                << " key_bits=" << key_bits;
        // Same buffer contract as radix_sort_u64: scratch resized to n so
        // arena callers can swap engines without re-provisioning.
        EXPECT_EQ(scratch.size(), n);
      }
    }
  }
}

TEST(StagedEngine, DuplicateHeavyAndDegenerateInputs) {
  rng::SplitMix64 gen(0xd0bb1eULL);
  // Heavy duplication: 20000 keys drawn from only 17 distinct values —
  // every digit pass is dominated by a few buckets.
  std::vector<std::uint64_t> distinct(17);
  for (auto& v : distinct) v = gen() & 0xffffffffULL;
  std::vector<std::uint64_t> keys(20000);
  for (auto& k : keys) k = distinct[gen() % distinct.size()];

  std::vector<std::uint64_t> want = keys;
  std::vector<std::uint64_t> want_scratch;
  radix_sort_u64(want, want_scratch, 32);
  std::vector<std::uint64_t> values = keys;
  std::vector<std::uint64_t> scratch;
  radix_sort_u32_staged(values, scratch, 32);
  EXPECT_EQ(values, want);

  // n < 2 is a no-op for both engines.
  std::vector<std::uint64_t> empty, one{42}, tiny_scratch;
  radix_sort_u32_staged(empty, tiny_scratch, 32);
  EXPECT_TRUE(empty.empty());
  radix_sort_u32_staged(one, tiny_scratch, 32);
  EXPECT_EQ(one, std::vector<std::uint64_t>{42});

  // key_bits above 32 are clamped (the engine's contract is narrow keys).
  std::vector<std::uint64_t> clamp(5000);
  for (auto& v : clamp) v = gen() & 0xffffffffULL;
  std::vector<std::uint64_t> clamp_want = clamp;
  std::vector<std::uint64_t> s1, s2;
  radix_sort_u64(clamp_want, s1, 32);
  radix_sort_u32_staged(clamp, s2, 64);
  EXPECT_EQ(clamp, clamp_want);
}

TEST(StagedEngine, SizeGateRoutesOnlyHugeNarrowBuilds) {
  // The gate is a compile-time constant the ablation bench measured; pin
  // the regime boundaries so a future edit can't silently re-route the
  // table3-class sizes (which must stay on the u64 engine).
  EXPECT_EQ(kU32StagedMinKeys, 10'000'000u);

  // Below the gate with narrow keys, radix_sort_u64 must behave exactly as
  // the classic engine — including its scratch contract.
  rng::SplitMix64 gen(0x6a7eULL);
  std::vector<std::uint64_t> values(100000);
  for (auto& v : values) v = gen() & 0xffffffULL;
  std::vector<std::uint64_t> want = values;
  std::sort(want.begin(), want.end());
  std::vector<std::uint64_t> scratch;
  radix_sort_u64(values, scratch, 24);
  EXPECT_EQ(values, want);
  EXPECT_EQ(scratch.size(), values.size());
}

}  // namespace
