// Unit tests for src/common: BitCode semantics, strong types, contracts.
#include <gtest/gtest.h>

#include <tuple>

#include "common/bitcode.hpp"
#include "common/ensure.hpp"
#include "common/types.hpp"

namespace pet {
namespace {

TEST(BitCode, DefaultIsEmpty) {
  const BitCode code;
  EXPECT_EQ(code.width(), 0u);
  EXPECT_EQ(code.value(), 0u);
  EXPECT_TRUE(code.empty());
  EXPECT_EQ(code.to_string(), "");
}

TEST(BitCode, ConstructsWithWidthAndValue) {
  const BitCode code(0b0011, 4);
  EXPECT_EQ(code.width(), 4u);
  EXPECT_EQ(code.value(), 0b0011u);
  EXPECT_EQ(code.to_string(), "0011");
}

TEST(BitCode, RejectsValueWiderThanWidth) {
  EXPECT_THROW(BitCode(0b10000, 4), PreconditionError);
  EXPECT_THROW(BitCode(1, 0), PreconditionError);
}

TEST(BitCode, RejectsWidthBeyond64) {
  EXPECT_THROW(BitCode(0, 65), PreconditionError);
}

TEST(BitCode, Accepts64BitFullWidth) {
  const BitCode code(~std::uint64_t{0}, 64);
  EXPECT_EQ(code.width(), 64u);
  EXPECT_TRUE(code.bit(0));
  EXPECT_TRUE(code.bit(63));
}

TEST(BitCode, BitIndexingIsMsbFirst) {
  const BitCode code = BitCode::parse("1010");
  EXPECT_TRUE(code.bit(0));
  EXPECT_FALSE(code.bit(1));
  EXPECT_TRUE(code.bit(2));
  EXPECT_FALSE(code.bit(3));
  EXPECT_THROW(code.bit(4), PreconditionError);
}

TEST(BitCode, ParseRoundTrips) {
  for (const auto* text : {"0", "1", "0001", "0110", "1011", "1110",
                           "000011", "11111111111111111111111111111111"}) {
    EXPECT_EQ(BitCode::parse(text).to_string(), text);
  }
}

TEST(BitCode, ParseRejectsNonBinary) {
  EXPECT_THROW(BitCode::parse("01x1"), ConfigError);
  EXPECT_THROW(BitCode::parse("2"), ConfigError);
}

TEST(BitCode, ParseRejectsOverlongLiteral) {
  EXPECT_THROW(BitCode::parse(std::string(65, '0')), ConfigError);
}

TEST(BitCode, PrefixExtractsLeadingBits) {
  const BitCode code = BitCode::parse("110101");
  EXPECT_EQ(code.prefix(0), BitCode{});
  EXPECT_EQ(code.prefix(3).to_string(), "110");
  EXPECT_EQ(code.prefix(6), code);
  EXPECT_THROW(code.prefix(7), PreconditionError);
}

TEST(BitCode, MatchesPrefixAgreesWithPaperExample) {
  // Paper Fig. 1: tags 0001, 0110, 1011, 1110; estimating path 0011.
  const BitCode path = BitCode::parse("0011");
  EXPECT_TRUE(BitCode::parse("0001").matches_prefix(path, 1));
  EXPECT_TRUE(BitCode::parse("0110").matches_prefix(path, 1));
  EXPECT_FALSE(BitCode::parse("1011").matches_prefix(path, 1));
  EXPECT_TRUE(BitCode::parse("0001").matches_prefix(path, 2));
  EXPECT_FALSE(BitCode::parse("0110").matches_prefix(path, 2));
  // No tag matches 001*: the paper's idle slot at prefix length 3.
  for (const auto* tag : {"0001", "0110", "1011", "1110"}) {
    EXPECT_FALSE(BitCode::parse(tag).matches_prefix(path, 3)) << tag;
  }
}

TEST(BitCode, CommonPrefixLenMatchesManualCases) {
  EXPECT_EQ(BitCode::parse("0011").common_prefix_len(BitCode::parse("0001")),
            2u);
  EXPECT_EQ(BitCode::parse("0011").common_prefix_len(BitCode::parse("0011")),
            4u);
  EXPECT_EQ(BitCode::parse("1011").common_prefix_len(BitCode::parse("0011")),
            0u);
  EXPECT_EQ(BitCode{}.common_prefix_len(BitCode{}), 0u);
}

TEST(BitCode, CommonPrefixLenRequiresEqualWidths) {
  EXPECT_THROW(
      BitCode::parse("01").common_prefix_len(BitCode::parse("011")),
      PreconditionError);
}

TEST(BitCode, ExtendedAppendsBranchBits) {
  BitCode code;
  code = code.extended(true);
  code = code.extended(false);
  code = code.extended(true);
  EXPECT_EQ(code.to_string(), "101");
}

TEST(BitCode, ExtendedRefusesToGrowPast64) {
  BitCode code(~std::uint64_t{0}, 64);
  EXPECT_THROW((void)code.extended(true), PreconditionError);
}

TEST(BitCode, SixtyFourBitPrefixOperations) {
  const BitCode a(0x8000000000000000ULL, 64);
  const BitCode b(0x8000000000000001ULL, 64);
  EXPECT_EQ(a.common_prefix_len(b), 63u);
  EXPECT_TRUE(a.matches_prefix(b, 63));
  EXPECT_FALSE(a.matches_prefix(b, 64));
}

TEST(BitCode, OrderingIsByWidthThenValue) {
  EXPECT_LT(BitCode::parse("1"), BitCode::parse("00"));
  EXPECT_LT(BitCode::parse("01"), BitCode::parse("10"));
}

/// matches_prefix(other, len) must equal prefix(len) == other.prefix(len)
/// for every length; exercised across widths.
class BitCodePrefixProperty
    : public ::testing::TestWithParam<std::tuple<unsigned, std::uint64_t>> {};

TEST_P(BitCodePrefixProperty, MatchesPrefixEqualsPrefixComparison) {
  const auto [width, salt] = GetParam();
  // Two deterministic codes of the given width.
  const std::uint64_t mask =
      width == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
  const BitCode a((0x9e3779b97f4a7c15ULL * (salt + 1)) & mask, width);
  const BitCode b((0xbf58476d1ce4e5b9ULL * (salt + 3)) & mask, width);
  for (unsigned len = 0; len <= width; ++len) {
    EXPECT_EQ(a.matches_prefix(b, len), a.prefix(len) == b.prefix(len))
        << "width=" << width << " len=" << len;
  }
  // common_prefix_len is the largest matching length.
  const unsigned lcp = a.common_prefix_len(b);
  EXPECT_TRUE(a.matches_prefix(b, lcp));
  if (lcp < width) EXPECT_FALSE(a.matches_prefix(b, lcp + 1));
}

INSTANTIATE_TEST_SUITE_P(
    Widths, BitCodePrefixProperty,
    ::testing::Combine(::testing::Values(1u, 2u, 7u, 16u, 32u, 63u, 64u),
                       ::testing::Values(0u, 1u, 2u, 3u, 4u)));

TEST(StrongTypes, DepthHeightConversionsRoundTrip) {
  const unsigned h = 32;
  for (unsigned d = 0; d <= h; ++d) {
    const GrayHeight g = to_gray_height(PrefixDepth{d}, h);
    EXPECT_EQ(g.value, h - d);
    EXPECT_EQ(to_prefix_depth(g, h).value, d);
  }
  EXPECT_THROW(to_gray_height(PrefixDepth{33}, 32), PreconditionError);
}

TEST(StrongTypes, SlotOutcomeNonemptyClassification) {
  EXPECT_FALSE(is_nonempty(SlotOutcome::kIdle));
  EXPECT_TRUE(is_nonempty(SlotOutcome::kSingleton));
  EXPECT_TRUE(is_nonempty(SlotOutcome::kCollision));
}

TEST(Ensure, ExpectsThrowsWithLocation) {
  try {
    expects(false, "boom");
    FAIL() << "expects(false) must throw";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("common_test"), std::string::npos);
  }
}

TEST(Ensure, ExpectsPassesSilently) {
  EXPECT_NO_THROW(expects(true, "never"));
}

}  // namespace
}  // namespace pet
