// Unit tests for src/common: BitCode semantics, strong types, contracts,
// and the radix sort's constant-digit skip at key widths that are not a
// multiple of 8 (the partial top digit is exactly where a skip off-by-one
// would hide — see docs/performance.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <vector>

#include "common/bitcode.hpp"
#include "common/ensure.hpp"
#include "common/radix.hpp"
#include "common/types.hpp"

namespace pet {
namespace {

TEST(BitCode, DefaultIsEmpty) {
  const BitCode code;
  EXPECT_EQ(code.width(), 0u);
  EXPECT_EQ(code.value(), 0u);
  EXPECT_TRUE(code.empty());
  EXPECT_EQ(code.to_string(), "");
}

TEST(BitCode, ConstructsWithWidthAndValue) {
  const BitCode code(0b0011, 4);
  EXPECT_EQ(code.width(), 4u);
  EXPECT_EQ(code.value(), 0b0011u);
  EXPECT_EQ(code.to_string(), "0011");
}

TEST(BitCode, RejectsValueWiderThanWidth) {
  EXPECT_THROW(BitCode(0b10000, 4), PreconditionError);
  EXPECT_THROW(BitCode(1, 0), PreconditionError);
}

TEST(BitCode, RejectsWidthBeyond64) {
  EXPECT_THROW(BitCode(0, 65), PreconditionError);
}

TEST(BitCode, Accepts64BitFullWidth) {
  const BitCode code(~std::uint64_t{0}, 64);
  EXPECT_EQ(code.width(), 64u);
  EXPECT_TRUE(code.bit(0));
  EXPECT_TRUE(code.bit(63));
}

TEST(BitCode, BitIndexingIsMsbFirst) {
  const BitCode code = BitCode::parse("1010");
  EXPECT_TRUE(code.bit(0));
  EXPECT_FALSE(code.bit(1));
  EXPECT_TRUE(code.bit(2));
  EXPECT_FALSE(code.bit(3));
  EXPECT_THROW(code.bit(4), PreconditionError);
}

TEST(BitCode, ParseRoundTrips) {
  for (const auto* text : {"0", "1", "0001", "0110", "1011", "1110",
                           "000011", "11111111111111111111111111111111"}) {
    EXPECT_EQ(BitCode::parse(text).to_string(), text);
  }
}

TEST(BitCode, ParseRejectsNonBinary) {
  EXPECT_THROW(BitCode::parse("01x1"), ConfigError);
  EXPECT_THROW(BitCode::parse("2"), ConfigError);
}

TEST(BitCode, ParseRejectsOverlongLiteral) {
  EXPECT_THROW(BitCode::parse(std::string(65, '0')), ConfigError);
}

TEST(BitCode, PrefixExtractsLeadingBits) {
  const BitCode code = BitCode::parse("110101");
  EXPECT_EQ(code.prefix(0), BitCode{});
  EXPECT_EQ(code.prefix(3).to_string(), "110");
  EXPECT_EQ(code.prefix(6), code);
  EXPECT_THROW(code.prefix(7), PreconditionError);
}

TEST(BitCode, MatchesPrefixAgreesWithPaperExample) {
  // Paper Fig. 1: tags 0001, 0110, 1011, 1110; estimating path 0011.
  const BitCode path = BitCode::parse("0011");
  EXPECT_TRUE(BitCode::parse("0001").matches_prefix(path, 1));
  EXPECT_TRUE(BitCode::parse("0110").matches_prefix(path, 1));
  EXPECT_FALSE(BitCode::parse("1011").matches_prefix(path, 1));
  EXPECT_TRUE(BitCode::parse("0001").matches_prefix(path, 2));
  EXPECT_FALSE(BitCode::parse("0110").matches_prefix(path, 2));
  // No tag matches 001*: the paper's idle slot at prefix length 3.
  for (const auto* tag : {"0001", "0110", "1011", "1110"}) {
    EXPECT_FALSE(BitCode::parse(tag).matches_prefix(path, 3)) << tag;
  }
}

TEST(BitCode, CommonPrefixLenMatchesManualCases) {
  EXPECT_EQ(BitCode::parse("0011").common_prefix_len(BitCode::parse("0001")),
            2u);
  EXPECT_EQ(BitCode::parse("0011").common_prefix_len(BitCode::parse("0011")),
            4u);
  EXPECT_EQ(BitCode::parse("1011").common_prefix_len(BitCode::parse("0011")),
            0u);
  EXPECT_EQ(BitCode{}.common_prefix_len(BitCode{}), 0u);
}

TEST(BitCode, CommonPrefixLenRequiresEqualWidths) {
  EXPECT_THROW(
      BitCode::parse("01").common_prefix_len(BitCode::parse("011")),
      PreconditionError);
}

TEST(BitCode, ExtendedAppendsBranchBits) {
  BitCode code;
  code = code.extended(true);
  code = code.extended(false);
  code = code.extended(true);
  EXPECT_EQ(code.to_string(), "101");
}

TEST(BitCode, ExtendedRefusesToGrowPast64) {
  BitCode code(~std::uint64_t{0}, 64);
  EXPECT_THROW((void)code.extended(true), PreconditionError);
}

TEST(BitCode, SixtyFourBitPrefixOperations) {
  const BitCode a(0x8000000000000000ULL, 64);
  const BitCode b(0x8000000000000001ULL, 64);
  EXPECT_EQ(a.common_prefix_len(b), 63u);
  EXPECT_TRUE(a.matches_prefix(b, 63));
  EXPECT_FALSE(a.matches_prefix(b, 64));
}

TEST(BitCode, OrderingIsByWidthThenValue) {
  EXPECT_LT(BitCode::parse("1"), BitCode::parse("00"));
  EXPECT_LT(BitCode::parse("01"), BitCode::parse("10"));
}

/// matches_prefix(other, len) must equal prefix(len) == other.prefix(len)
/// for every length; exercised across widths.
class BitCodePrefixProperty
    : public ::testing::TestWithParam<std::tuple<unsigned, std::uint64_t>> {};

TEST_P(BitCodePrefixProperty, MatchesPrefixEqualsPrefixComparison) {
  const auto [width, salt] = GetParam();
  // Two deterministic codes of the given width.
  const std::uint64_t mask =
      width == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
  const BitCode a((0x9e3779b97f4a7c15ULL * (salt + 1)) & mask, width);
  const BitCode b((0xbf58476d1ce4e5b9ULL * (salt + 3)) & mask, width);
  for (unsigned len = 0; len <= width; ++len) {
    EXPECT_EQ(a.matches_prefix(b, len), a.prefix(len) == b.prefix(len))
        << "width=" << width << " len=" << len;
  }
  // common_prefix_len is the largest matching length.
  const unsigned lcp = a.common_prefix_len(b);
  EXPECT_TRUE(a.matches_prefix(b, lcp));
  if (lcp < width) EXPECT_FALSE(a.matches_prefix(b, lcp + 1));
}

INSTANTIATE_TEST_SUITE_P(
    Widths, BitCodePrefixProperty,
    ::testing::Combine(::testing::Values(1u, 2u, 7u, 16u, 32u, 63u, 64u),
                       ::testing::Values(0u, 1u, 2u, 3u, 4u)));

TEST(StrongTypes, DepthHeightConversionsRoundTrip) {
  const unsigned h = 32;
  for (unsigned d = 0; d <= h; ++d) {
    const GrayHeight g = to_gray_height(PrefixDepth{d}, h);
    EXPECT_EQ(g.value, h - d);
    EXPECT_EQ(to_prefix_depth(g, h).value, d);
  }
  EXPECT_THROW(to_gray_height(PrefixDepth{33}, 32), PreconditionError);
}

TEST(StrongTypes, SlotOutcomeNonemptyClassification) {
  EXPECT_FALSE(is_nonempty(SlotOutcome::kIdle));
  EXPECT_TRUE(is_nonempty(SlotOutcome::kSingleton));
  EXPECT_TRUE(is_nonempty(SlotOutcome::kCollision));
}

TEST(Ensure, ExpectsThrowsWithLocation) {
  try {
    expects(false, "boom");
    FAIL() << "expects(false) must throw";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("common_test"), std::string::npos);
  }
}

TEST(Ensure, ExpectsPassesSilently) {
  EXPECT_NO_THROW(expects(true, "never"));
}

// ---------------------------------------------------------------------------
// radix_sort_u64: the constant-digit skip at key_bits not a multiple of 8.
// The skip fires when src[0]'s digit bucket holds all n keys; these cases
// pin it for partial top digits, for skips decided *after* a buffer swap,
// and for near-constant digits that must NOT be skipped.

namespace {
void expect_radix_sorts(std::vector<std::uint64_t> values,
                        unsigned key_bits) {
  std::vector<std::uint64_t> want = values;
  std::sort(want.begin(), want.end());
  std::vector<std::uint64_t> scratch;
  radix_sort_u64(values, scratch, key_bits);
  ASSERT_EQ(values, want) << "key_bits=" << key_bits;
}

// Deterministic scramble so the cases need no rng dependency.
constexpr std::uint64_t scramble(std::uint64_t x) {
  x ^= x >> 12;
  x *= 0x2545f4914f6cdd1dULL;
  x ^= x >> 27;
  return x;
}
}  // namespace

TEST(Radix, PartialTopDigitConstantIsSkippedCorrectly) {
  // key_bits = 13: digit 1 covers bits 8..15 but only 8..12 carry weight.
  // Fix those bits; only the low byte discriminates, so the second pass is
  // the skip path and the sorted run must still land back in `values`.
  for (const unsigned key_bits : {9u, 13u, 17u, 23u, 33u, 63u}) {
    const unsigned top_shift = 8 * ((key_bits - 1) / 8);
    const std::uint64_t top = (std::uint64_t{1} << (key_bits - 1)) |
                              (std::uint64_t{0x15} << top_shift) %
                                  (std::uint64_t{1} << key_bits);
    std::vector<std::uint64_t> values(777);
    for (std::size_t i = 0; i < values.size(); ++i) {
      values[i] = (top & ~std::uint64_t{0xff}) | (scramble(i) & 0xff);
    }
    expect_radix_sorts(std::move(values), key_bits);
  }
}

TEST(Radix, ConstantLowByteSkipsFirstPassOnly) {
  // Low byte fixed, everything above it varies: pass 0 skips, the higher
  // passes still run, including the partial top digit.
  for (const unsigned key_bits : {13u, 29u, 47u, 63u}) {
    const std::uint64_t mask = (std::uint64_t{1} << key_bits) - 1;
    std::vector<std::uint64_t> values(500);
    for (std::size_t i = 0; i < values.size(); ++i) {
      values[i] = ((scramble(i) & mask) & ~std::uint64_t{0xff}) | 0x42;
    }
    expect_radix_sorts(std::move(values), key_bits);
  }
}

TEST(Radix, SkipDecisionAfterBufferSwapUsesSwappedFront) {
  // key_bits = 24 with a constant *middle* digit: pass 0 scatters (buffers
  // swap), then the pass-1 skip must consult the swapped front element.
  std::vector<std::uint64_t> values(1000);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = ((scramble(i) & 0xff) << 16) | (std::uint64_t{0x77} << 8) |
                (scramble(i ^ 0xabc) & 0xff);
  }
  expect_radix_sorts(std::move(values), 24);
}

TEST(Radix, NearConstantDigitIsNotSkipped) {
  // All but one key share the front element's top digit: the skip must not
  // fire, and the one outlier has to travel to its sorted position.
  for (const unsigned key_bits : {13u, 21u, 63u}) {
    std::vector<std::uint64_t> values(300, std::uint64_t{1});
    values[257] = (std::uint64_t{1} << (key_bits - 1)) | 1u;  // top bit set
    expect_radix_sorts(std::move(values), key_bits);
  }
}

TEST(Radix, SubByteKeyWidths) {
  // key_bits < 8: a single partial digit, both the varying and the
  // all-equal (fully skipped) shapes.
  for (const unsigned key_bits : {1u, 3u, 5u, 7u}) {
    const std::uint64_t mask = (std::uint64_t{1} << key_bits) - 1;
    std::vector<std::uint64_t> varying(257);
    for (std::size_t i = 0; i < varying.size(); ++i) {
      varying[i] = scramble(i) & mask;
    }
    expect_radix_sorts(std::move(varying), key_bits);
    expect_radix_sorts(
        std::vector<std::uint64_t>(64, std::uint64_t{1} & mask), key_bits);
  }
}

TEST(Radix, EveryKeyWidthSortsDenseAndSparseShapes) {
  // Sweep every key_bits 1..64: dense low values (top digits constant 0)
  // and sparse values pinned at the top of the range (low digits mostly
  // constant).  Catches any width where digit count or skip misclassifies.
  for (unsigned key_bits = 1; key_bits <= 64; ++key_bits) {
    const std::uint64_t mask = key_bits == 64
                                   ? ~std::uint64_t{0}
                                   : (std::uint64_t{1} << key_bits) - 1;
    std::vector<std::uint64_t> dense(123);
    std::vector<std::uint64_t> sparse(123);
    for (std::size_t i = 0; i < dense.size(); ++i) {
      dense[i] = scramble(i) % 7;
      sparse[i] = mask - (scramble(i) % 7);
    }
    expect_radix_sorts(std::move(dense), key_bits);
    expect_radix_sorts(std::move(sparse), key_bits);
  }
}

}  // namespace
}  // namespace pet
