// Tests for the PET extensions: post-hoc confidence intervals, mergeable
// sketches (union/intersection estimation), and the streaming monitor.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "channel/sorted_pet_channel.hpp"
#include "common/ensure.hpp"
#include "core/confidence.hpp"
#include "core/estimator.hpp"
#include "core/monitor.hpp"
#include "core/sketch.hpp"
#include "tags/population.hpp"

namespace pet::core {
namespace {

std::vector<TagId> make_tags(std::size_t n, std::uint64_t seed) {
  const auto pop = tags::TagPopulation::generate(n, seed);
  return {pop.ids().begin(), pop.ids().end()};
}

// --------------------------------------------------------------- confidence

TEST(Confidence, IntervalContainsPointEstimate) {
  chan::SortedPetChannel channel(make_tags(10000, 1));
  const PetEstimator estimator(PetConfig{}, {0.1, 0.05});
  const auto result = estimator.estimate_with_rounds(channel, 500, 2);
  const auto ci = confidence_interval(result, 0.05);
  EXPECT_LT(ci.lo, ci.point);
  EXPECT_GT(ci.hi, ci.point);
  EXPECT_NEAR(ci.point, result.n_hat, 1e-9);
}

TEST(Confidence, TighterDeltaWidensInterval) {
  chan::SortedPetChannel channel(make_tags(10000, 1));
  const PetEstimator estimator(PetConfig{}, {0.1, 0.05});
  const auto result = estimator.estimate_with_rounds(channel, 500, 2);
  const auto loose = confidence_interval(result, 0.10);
  const auto tight = confidence_interval(result, 0.01);
  EXPECT_LT(loose.hi - loose.lo, tight.hi - tight.lo);
}

TEST(Confidence, MoreRoundsNarrowInterval) {
  chan::SortedPetChannel channel(make_tags(10000, 1));
  const PetEstimator estimator(PetConfig{}, {0.1, 0.05});
  const auto few = estimator.estimate_with_rounds(channel, 100, 2);
  const auto many = estimator.estimate_with_rounds(channel, 1600, 2);
  EXPECT_GT(confidence_interval(few, 0.05).relative_half_width(),
            confidence_interval(many, 0.05).relative_half_width());
  // 16x the rounds -> ~4x narrower.
  EXPECT_NEAR(confidence_interval(few, 0.05).relative_half_width() /
                  confidence_interval(many, 0.05).relative_half_width(),
              4.0, 1.0);
}

TEST(Confidence, CoversTruthAtTheNominalRate) {
  // 40 estimates at delta = 10%: expect >= ~90% coverage (allow slack for
  // the small trial count).
  const auto tags = make_tags(20000, 3);
  const PetEstimator estimator(PetConfig{}, {0.1, 0.05});
  int covered = 0;
  for (std::uint64_t t = 0; t < 40; ++t) {
    chan::SortedPetChannelConfig config;
    config.manufacturing_seed = 1000 + t;
    chan::SortedPetChannel channel(tags, config);
    const auto result = estimator.estimate_with_rounds(channel, 400, t);
    if (confidence_interval(result, 0.10).contains(20000.0)) ++covered;
  }
  EXPECT_GE(covered, 32);
}

TEST(Confidence, EmpiricalIntervalTracksAsymptoticOne) {
  chan::SortedPetChannel channel(make_tags(30000, 4));
  const PetEstimator estimator(PetConfig{}, {0.1, 0.05});
  const auto result = estimator.estimate_with_rounds(channel, 2000, 5);
  const auto asymptotic = confidence_interval(result, 0.05);
  const auto empirical = empirical_confidence_interval(result, 0.05);
  // The sample sigma over 2000 rounds is within ~10% of sigma(h) = 1.8727.
  EXPECT_NEAR(empirical.relative_half_width(),
              asymptotic.relative_half_width(),
              0.15 * asymptotic.relative_half_width());
}

TEST(Confidence, EmptyObservationsCollapseToAPointAtZero) {
  // A certified-empty read (no depth observations) is an exact n-hat = 0,
  // so the interval degenerates instead of throwing.  The delta
  // precondition is still enforced first.
  EstimateResult empty;
  const auto interval = confidence_interval(empty, 0.05);
  EXPECT_EQ(interval.lo, 0.0);
  EXPECT_EQ(interval.point, 0.0);
  EXPECT_EQ(interval.hi, 0.0);
  EXPECT_THROW((void)confidence_interval(empty, 0.0), PreconditionError);
}

// ------------------------------------------------------------------- sketch

TEST(Sketch, EstimateMatchesEstimator) {
  const auto tags = make_tags(8000, 5);
  chan::SortedPetChannel a(tags);
  chan::SortedPetChannel b(tags);
  const PetConfig config;
  const auto sketch = PetSketch::take(a, config, 600, 7);
  const auto result =
      PetEstimator(config, {0.1, 0.05}).estimate_with_rounds(b, 600, 7);
  EXPECT_NEAR(sketch.estimate(), result.n_hat, 1e-9)
      << "same seed, same channel -> identical estimate";
}

TEST(Sketch, RejectsRehashMode) {
  const auto tags = make_tags(10, 5);
  chan::SortedPetChannel channel(tags);
  PetConfig config;
  config.tags_rehash = true;
  EXPECT_THROW((void)PetSketch::take(channel, config, 10, 1),
               PreconditionError);
}

TEST(Sketch, UnionOfDisjointSetsAddsUp) {
  const auto all = make_tags(20000, 6);
  const std::vector<TagId> left(all.begin(), all.begin() + 12000);
  const std::vector<TagId> right(all.begin() + 12000, all.end());

  chan::SortedPetChannel ca(left);
  chan::SortedPetChannel cb(right);
  const PetConfig config;
  const auto sa = PetSketch::take(ca, config, 1200, 9);
  const auto sb = PetSketch::take(cb, config, 1200, 9);
  ASSERT_TRUE(sa.mergeable_with(sb));
  const auto su = PetSketch::merge_union(sa, sb);
  EXPECT_NEAR(su.estimate(), 20000.0, 0.12 * 20000.0);
  EXPECT_NEAR(sa.estimate(), 12000.0, 0.12 * 12000.0);
  EXPECT_NEAR(sb.estimate(), 8000.0, 0.12 * 8000.0);
}

TEST(Sketch, UnionIsDuplicateInsensitive) {
  // Overlapping readers: the union estimate equals a single reader's
  // estimate of the same distinct set, exactly.
  const auto all = make_tags(10000, 7);
  const std::vector<TagId> left(all.begin(), all.begin() + 7000);
  const std::vector<TagId> right(all.begin() + 4000, all.end());  // overlap

  chan::SortedPetChannel ca(left);
  chan::SortedPetChannel cb(right);
  chan::SortedPetChannel cu(all);
  const PetConfig config;
  const auto sa = PetSketch::take(ca, config, 800, 11);
  const auto sb = PetSketch::take(cb, config, 800, 11);
  const auto direct = PetSketch::take(cu, config, 800, 11);
  const auto merged = PetSketch::merge_union(sa, sb);
  EXPECT_EQ(merged.depths(), direct.depths())
      << "max composition is exact, not just statistical";
}

TEST(Sketch, IntersectionViaInclusionExclusion) {
  const auto all = make_tags(30000, 8);
  const std::vector<TagId> left(all.begin(), all.begin() + 20000);
  const std::vector<TagId> right(all.begin() + 10000, all.end());
  // |A| = 20000, |B| = 20000, |A n B| = 10000.

  chan::SortedPetChannel ca(left);
  chan::SortedPetChannel cb(right);
  const PetConfig config;
  const auto sa = PetSketch::take(ca, config, 3000, 13);
  const auto sb = PetSketch::take(cb, config, 3000, 13);
  const double inter = PetSketch::estimate_intersection(sa, sb);
  // IE differences are noisy; accept a wide band around 10000.
  EXPECT_NEAR(inter, 10000.0, 4000.0);
}

TEST(Sketch, MergeRequiresMatchingParameters) {
  const auto tags = make_tags(100, 9);
  chan::SortedPetChannel ca(tags);
  chan::SortedPetChannel cb(tags);
  const PetConfig config;
  const auto sa = PetSketch::take(ca, config, 10, 1);
  const auto sb = PetSketch::take(cb, config, 10, 2);  // different seed
  EXPECT_FALSE(sa.mergeable_with(sb));
  EXPECT_THROW((void)PetSketch::merge_union(sa, sb), PreconditionError);
  const auto sc = PetSketch::take(cb, config, 20, 1);  // different rounds
  EXPECT_FALSE(sa.mergeable_with(sc));
}

TEST(Sketch, WireSizeIsCompact) {
  const auto tags = make_tags(100, 10);
  chan::SortedPetChannel channel(tags);
  const auto sketch = PetSketch::take(channel, PetConfig{}, 1000, 1);
  // 1000 depths at 6 bits each + header: well under 1 KiB.
  EXPECT_EQ(sketch.wire_bits(), 64u + 8u + 6000u);
}

TEST(Sketch, RoundTripsThroughStoredState) {
  const auto tags = make_tags(500, 11);
  chan::SortedPetChannel channel(tags);
  const auto original = PetSketch::take(channel, PetConfig{}, 100, 3);
  const PetSketch restored(original.seed(), original.tree_height(),
                           original.depths());
  EXPECT_DOUBLE_EQ(restored.estimate(), original.estimate());
  EXPECT_TRUE(restored.mergeable_with(original));
}

TEST(Sketch, ValidatesStoredState) {
  EXPECT_THROW(PetSketch(1, 32, {}), PreconditionError);
  EXPECT_THROW(PetSketch(1, 32, {33}), PreconditionError);
  EXPECT_THROW(PetSketch(1, 1, {0}), PreconditionError);
}

// ------------------------------------------------------------------ monitor

TEST(Monitor, ValidatesConfig) {
  MonitorConfig config;
  config.recent_rounds = 2;
  EXPECT_THROW(StreamingMonitor(config, 1), PreconditionError);
  config = MonitorConfig{};
  config.recent_rounds = config.window_rounds;
  EXPECT_THROW(StreamingMonitor(config, 1), PreconditionError);
}

TEST(Monitor, WarmsUpBeforeEstimating) {
  chan::SortedPetChannel channel(make_tags(5000, 12));
  MonitorConfig config;
  StreamingMonitor monitor(config, 1);
  EXPECT_FALSE(monitor.estimate().has_value());
  for (std::size_t i = 0; i < config.recent_rounds; ++i) {
    (void)monitor.tick(channel);
  }
  EXPECT_TRUE(monitor.estimate().has_value());
}

TEST(Monitor, ConvergesOnStablePopulation) {
  chan::SortedPetChannel channel(make_tags(20000, 13));
  MonitorConfig config;
  StreamingMonitor monitor(config, 2);
  for (int i = 0; i < 256; ++i) (void)monitor.tick(channel);
  ASSERT_TRUE(monitor.estimate().has_value());
  EXPECT_NEAR(*monitor.estimate(), 20000.0, 0.2 * 20000.0);
  EXPECT_EQ(monitor.changes_detected(), 0u)
      << "no false alarms on a stable population in this run";
  const auto ci = monitor.interval(0.05);
  ASSERT_TRUE(ci.has_value());
  EXPECT_TRUE(ci->contains(20000.0));
}

TEST(Monitor, DetectsAnOrderOfMagnitudeJump) {
  auto pop = tags::TagPopulation::generate(2000, 14);
  MonitorConfig config;
  StreamingMonitor monitor(config, 3);

  auto run_ticks = [&](int count) {
    bool changed = false;
    chan::SortedPetChannel channel({pop.ids().begin(), pop.ids().end()});
    for (int i = 0; i < count; ++i) changed = monitor.tick(channel) || changed;
    return changed;
  };

  EXPECT_FALSE(run_ticks(128));
  pop.join_fresh(18000, 15);  // 2k -> 20k
  EXPECT_TRUE(run_ticks(128)) << "10x growth must trip the detector";
  ASSERT_TRUE(monitor.estimate().has_value());
  EXPECT_NEAR(*monitor.estimate(), 20000.0, 0.35 * 20000.0)
      << "after reseeding, the estimate tracks the new population";
}

TEST(Monitor, CountsTicks) {
  chan::SortedPetChannel channel(make_tags(100, 16));
  StreamingMonitor monitor(MonitorConfig{}, 4);
  for (int i = 0; i < 10; ++i) (void)monitor.tick(channel);
  EXPECT_EQ(monitor.ticks(), 10u);
  EXPECT_EQ(monitor.window_fill(), 10u);
}

}  // namespace
}  // namespace pet::core
