// Unit tests for src/stats: streaming moments, Gaussian quantiles, the
// accuracy-contract helpers, histograms, and the KS machinery.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/ensure.hpp"
#include "rng/prng.hpp"
#include "stats/accuracy.hpp"
#include "stats/histogram.hpp"
#include "stats/ks.hpp"
#include "stats/normal.hpp"
#include "stats/running_stat.hpp"

namespace pet::stats {
namespace {

TEST(RunningStat, MatchesClosedFormMoments) {
  RunningStat stat;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stat.add(x);
  EXPECT_EQ(stat.count(), 8u);
  EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stat.variance(), 4.0);  // classic population example
  EXPECT_DOUBLE_EQ(stat.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(stat.min(), 2.0);
  EXPECT_DOUBLE_EQ(stat.max(), 9.0);
  EXPECT_NEAR(stat.sample_variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStat, SampleVarianceNeedsTwoSamples) {
  RunningStat stat;
  stat.add(1.0);
  EXPECT_THROW(stat.sample_variance(), PreconditionError);
}

TEST(RunningStat, RmsAboutExternalCenter) {
  RunningStat stat;
  stat.add(9.0);
  stat.add(11.0);
  // var = 1, bias to center 8 is 2 -> rms = sqrt(1 + 4).
  EXPECT_NEAR(stat.rms_about(8.0), std::sqrt(5.0), 1e-12);
}

TEST(RunningStat, MergeEqualsBulk) {
  rng::Xoshiro256ss gen(5);
  RunningStat bulk;
  RunningStat left;
  RunningStat right;
  for (int i = 0; i < 1000; ++i) {
    const double x = static_cast<double>(gen() >> 40);
    bulk.add(x);
    (i % 3 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), bulk.count());
  EXPECT_NEAR(left.mean(), bulk.mean(), 1e-6 * std::abs(bulk.mean()));
  EXPECT_NEAR(left.variance(), bulk.variance(),
              1e-6 * std::abs(bulk.variance()));
  EXPECT_DOUBLE_EQ(left.min(), bulk.min());
  EXPECT_DOUBLE_EQ(left.max(), bulk.max());
}

TEST(Normal, CdfKnownPoints) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959963985), 0.975, 1e-9);
  EXPECT_NEAR(normal_cdf(-1.0), 0.158655253931, 1e-9);
}

TEST(Normal, QuantileInvertsCdf) {
  for (const double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99,
                         0.999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-12) << "p=" << p;
  }
  EXPECT_THROW(normal_quantile(0.0), PreconditionError);
  EXPECT_THROW(normal_quantile(1.0), PreconditionError);
}

TEST(Normal, QuantileKnownPoints) {
  EXPECT_NEAR(normal_quantile(0.975), 1.959963985, 1e-8);
  EXPECT_NEAR(normal_quantile(0.995), 2.575829304, 1e-8);
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
}

TEST(Normal, ErfInvRoundTrips) {
  for (const double y : {-0.9, -0.5, -0.1, 0.0 + 1e-12, 0.1, 0.5, 0.9, 0.99}) {
    EXPECT_NEAR(std::erf(erf_inv(y)), y, 1e-12) << "y=" << y;
  }
}

TEST(Normal, TwoSidedConstantMatchesTextbookValues) {
  // delta = 1% -> 2.5758; 5% -> 1.9600; 10% -> 1.6449 (Eq. 17 constants).
  EXPECT_NEAR(two_sided_normal_constant(0.01), 2.575829304, 1e-7);
  EXPECT_NEAR(two_sided_normal_constant(0.05), 1.959963985, 1e-7);
  EXPECT_NEAR(two_sided_normal_constant(0.10), 1.644853627, 1e-7);
}

TEST(Accuracy, RequirementValidation) {
  AccuracyRequirement ok{0.05, 0.01};
  EXPECT_NO_THROW(ok.validate());
  EXPECT_THROW((AccuracyRequirement{0.0, 0.01}).validate(),
               PreconditionError);
  EXPECT_THROW((AccuracyRequirement{0.05, 1.0}).validate(),
               PreconditionError);
}

TEST(Accuracy, IntervalMatchesPaperExample) {
  // Paper Section 3: n = 50000, eps = 5% -> [47500, 52500].
  const AccuracyRequirement req{0.05, 0.01};
  EXPECT_DOUBLE_EQ(req.interval_lo(50000), 47500.0);
  EXPECT_DOUBLE_EQ(req.interval_hi(50000), 52500.0);
}

TEST(TrialSummary, ComputesPaperMetrics) {
  TrialSummary summary(100.0);
  for (const double x : {90.0, 100.0, 110.0}) summary.add(x);
  EXPECT_DOUBLE_EQ(summary.accuracy(), 1.0);            // Eq. (22)
  EXPECT_NEAR(summary.deviation(), std::sqrt(200.0 / 3.0), 1e-12);  // Eq. (23)
  EXPECT_NEAR(summary.normalized_deviation(), summary.deviation() / 100.0,
              1e-15);
  EXPECT_DOUBLE_EQ(summary.fraction_within(0.10), 1.0);
  EXPECT_NEAR(summary.fraction_within(0.05), 1.0 / 3.0, 1e-12);
  EXPECT_TRUE(summary.meets(AccuracyRequirement{0.10, 0.05}));
  EXPECT_FALSE(summary.meets(AccuracyRequirement{0.05, 0.05}));
}

TEST(Histogram, BinsAndOverflows) {
  Histogram h(0.0, 10.0, 5);
  for (const double x : {-1.0, 0.0, 1.9, 2.0, 9.9, 10.0, 42.0}) h.add(x);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.count(0), 2u);  // 0.0, 1.9
  EXPECT_EQ(h.count(1), 1u);  // 2.0
  EXPECT_EQ(h.count(4), 1u);  // 9.9
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
  EXPECT_THROW(h.count(5), PreconditionError);
}

TEST(Histogram, FractionWithinUsesExactSamples) {
  Histogram h(0.0, 100.0, 10);
  for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i));
  EXPECT_NEAR(h.fraction_within(25.0, 75.0), 0.51, 1e-12);
}

TEST(Histogram, AsciiRenderingIsWellFormed) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string art = h.render_ascii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 2);
}

TEST(Ks, IdenticalSamplesHaveZeroDistance) {
  const std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(ks_statistic(a, a), 0.0);
}

TEST(Ks, DisjointSamplesHaveUnitDistance) {
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {10.0, 20.0};
  EXPECT_DOUBLE_EQ(ks_statistic(a, b), 1.0);
}

TEST(Ks, SameDistributionPassesAtCriticalValue) {
  rng::Xoshiro256ss gen(11);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 4000; ++i) {
    a.push_back(static_cast<double>(gen() >> 11) * 0x1.0p-53);
    b.push_back(static_cast<double>(gen() >> 11) * 0x1.0p-53);
  }
  EXPECT_LT(ks_statistic(a, b), ks_critical_value(a.size(), b.size(), 0.001));
}

TEST(Ks, ShiftedDistributionFailsAtCriticalValue) {
  rng::Xoshiro256ss gen(12);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 4000; ++i) {
    const double u = static_cast<double>(gen() >> 11) * 0x1.0p-53;
    a.push_back(u);
    b.push_back(u + 0.1);
  }
  EXPECT_GT(ks_statistic(a, b), ks_critical_value(a.size(), b.size(), 0.001));
}

}  // namespace
}  // namespace pet::stats
