// Tests for pet::gen2 — the EPC C1G2 MAC substrate: Select/session/flag
// semantics, the Q-adaptation policies, the impaired slot engine, the full
// inventory loop, and the Gen2PrefixChannel's clean-channel equivalence
// with the ideal ExactChannel reference.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "channel/exact_channel.hpp"
#include "gen2/channel.hpp"
#include "gen2/gen2.hpp"
#include "gen2/inventory.hpp"
#include "gen2/mac.hpp"
#include "gen2/qpolicy.hpp"
#include "protocols/identification.hpp"
#include "rng/hash_family.hpp"
#include "rng/prng.hpp"
#include "runtime/trial_runner.hpp"
#include "tags/population.hpp"

namespace pet::gen2 {
namespace {

std::vector<TagId> make_tags(std::uint64_t n, std::uint64_t seed = 0xdecaf) {
  const auto pop = tags::TagPopulation::generate(n, seed);
  return {pop.ids().begin(), pop.ids().end()};
}

BitCode code_of(std::uint64_t value, unsigned width) {
  return BitCode(value, width);
}

// ---------------------------------------------------------------- Select

TEST(SelectMask, EmptyMaskMatchesEveryEpc) {
  const SelectMask select;
  EXPECT_TRUE(select.matches(code_of(0, 32)));
  EXPECT_TRUE(select.matches(code_of(0xffffffffULL, 32)));
}

TEST(SelectMask, MatchesExactlyThePrefix) {
  SelectMask select;
  select.mask = code_of(0b101, 3);
  EXPECT_TRUE(select.matches(code_of(0b1010'0000'0000'0000ULL, 16)));
  EXPECT_FALSE(select.matches(code_of(0b1000'0000'0000'0000ULL, 16)));
  EXPECT_FALSE(select.matches(code_of(0, 16)));
}

TEST(SelectMask, MaskWiderThanEpcMatchesNothing) {
  SelectMask select;
  select.mask = code_of(0, 17);
  EXPECT_FALSE(select.matches(code_of(0, 16)));
}

// -------------------------------------------------------------- sessions

TEST(Gen2TagState, FlagsStartAtAInEverySession) {
  Gen2Tag tag(code_of(5, 32));
  const SessionTimers timers;
  for (const Session s :
       {Session::kS0, Session::kS1, Session::kS2, Session::kS3}) {
    EXPECT_EQ(tag.flag(s, 0, timers), InvFlag::kA) << to_string(s);
  }
}

TEST(Gen2TagState, S2PersistsAndPowerCycleResetsOnlyS0AndSl) {
  Gen2Tag tag(code_of(5, 32));
  const SessionTimers timers;
  EXPECT_TRUE(tag.set_flag(Session::kS0, InvFlag::kB, 10));
  EXPECT_TRUE(tag.set_flag(Session::kS2, InvFlag::kB, 10));
  tag.set_selected(true);
  tag.power_cycle();
  EXPECT_EQ(tag.flag(Session::kS0, 11, timers), InvFlag::kA);
  EXPECT_EQ(tag.flag(Session::kS2, 1u << 20, timers), InvFlag::kB);
  EXPECT_FALSE(tag.selected());
}

TEST(Gen2TagState, S1DecaysBackToAAfterTheTimer) {
  Gen2Tag tag(code_of(5, 32));
  SessionTimers timers;
  timers.s1_decay_slots = 100;
  tag.set_flag(Session::kS1, InvFlag::kB, 50);
  bool decayed = true;
  EXPECT_EQ(tag.flag(Session::kS1, 149, timers, &decayed), InvFlag::kB);
  EXPECT_FALSE(decayed);
  EXPECT_EQ(tag.flag(Session::kS1, 150, timers, &decayed), InvFlag::kA);
  EXPECT_TRUE(decayed);
  // The decay is sticky: later reads see A without reporting a new decay.
  EXPECT_EQ(tag.flag(Session::kS1, 151, timers, &decayed), InvFlag::kA);
  EXPECT_FALSE(decayed);
}

TEST(Gen2TagState, S1WithNoDecayTimerPersists) {
  Gen2Tag tag(code_of(5, 32));
  SessionTimers timers;
  timers.s1_decay_slots = SessionTimers::kNoDecay;
  tag.set_flag(Session::kS1, InvFlag::kB, 0);
  EXPECT_EQ(tag.flag(Session::kS1, ~std::uint64_t{0} - 1, timers),
            InvFlag::kB);
}

TEST(Gen2TagState, SetFlagReportsFlipsOnly) {
  Gen2Tag tag(code_of(5, 32));
  EXPECT_TRUE(tag.set_flag(Session::kS2, InvFlag::kB, 0));
  EXPECT_FALSE(tag.set_flag(Session::kS2, InvFlag::kB, 1));
  EXPECT_TRUE(tag.set_flag(Session::kS2, InvFlag::kA, 2));
}

// ------------------------------------------------------------- Q policies

TEST(QPolicy, FloatingQRaisesOnCollisionsLowersOnIdles) {
  QPolicyConfig config;
  config.q0 = 4;
  config.c = 0.5;
  QPolicy policy(config);
  EXPECT_EQ(policy.q(), 4u);
  // One collision: Qfp 4.5, still rounds to... 5 on ties-away; the
  // standard's rule reframes as soon as round(Qfp) moves.
  const bool adjust = policy.on_slot(SlotOutcome::kCollision);
  EXPECT_EQ(policy.q(), 5u);
  EXPECT_TRUE(adjust);
  // Singletons leave Qfp alone.
  EXPECT_FALSE(policy.on_slot(SlotOutcome::kSingleton));
  EXPECT_EQ(policy.q(), 5u);
  // Idles walk it back down.
  policy.on_slot(SlotOutcome::kIdle);
  EXPECT_FALSE(policy.on_slot(SlotOutcome::kIdle));
  EXPECT_EQ(policy.q(), 4u);
}

TEST(QPolicy, FloatingQClampsAtTheConfiguredBounds) {
  QPolicyConfig config;
  config.q0 = 0;
  config.c = 0.5;
  QPolicy policy(config);
  for (int i = 0; i < 10; ++i) policy.on_slot(SlotOutcome::kIdle);
  EXPECT_EQ(policy.q(), 0u);
  for (int i = 0; i < 100; ++i) policy.on_slot(SlotOutcome::kCollision);
  EXPECT_EQ(policy.q(), 15u);
}

TEST(QPolicy, DfaBacklogUsesSchouteEstimate) {
  QPolicyConfig config;
  config.kind = QPolicyKind::kDfaBacklog;
  config.q0 = 4;
  QPolicy policy(config);
  // DFA never asks for mid-frame adjustment.
  EXPECT_FALSE(policy.on_slot(SlotOutcome::kCollision));
  // 100 collisions: backlog ~ 239, Q = round(log2 239) = 8.
  policy.on_frame_end(100);
  EXPECT_EQ(policy.q(), 8u);
  // A collision-free frame steps down instead of jumping to zero.
  policy.on_frame_end(0);
  EXPECT_EQ(policy.q(), 7u);
}

// ------------------------------------------------------------------ MAC

TEST(Gen2Mac, CleanSlotsClassifyByResponderCount) {
  Gen2Mac mac(Gen2MacConfig{});
  EXPECT_EQ(mac.run_slot(0, 22, 16).outcome, SlotOutcome::kIdle);
  EXPECT_EQ(mac.run_slot(1, 22, 16).outcome, SlotOutcome::kSingleton);
  EXPECT_EQ(mac.run_slot(7, 22, 16).outcome, SlotOutcome::kCollision);
  EXPECT_EQ(mac.ledger().idle_slots, 1u);
  EXPECT_EQ(mac.ledger().singleton_slots, 1u);
  EXPECT_EQ(mac.ledger().collision_slots, 1u);
}

TEST(Gen2Mac, LedgerChargesCommandAndReplyBits) {
  Gen2Mac mac(Gen2MacConfig{});
  mac.run_slot(0, 22, 16);  // idle: no uplink bits
  mac.run_slot(3, 4, 16);   // collision: all three tags transmitted
  EXPECT_EQ(mac.ledger().reader_bits, 26u);
  EXPECT_EQ(mac.ledger().tag_bits, 48u);
  EXPECT_GT(mac.ledger().airtime_us, 0);
  mac.broadcast(77);  // Select: downlink only, no slot
  EXPECT_EQ(mac.ledger().reader_bits, 103u);
  EXPECT_EQ(mac.ledger().total_slots(), 2u);
  mac.acknowledge(18, 128);  // ACK + EPC read rides on the counted slot
  EXPECT_EQ(mac.ledger().reader_bits, 121u);
  EXPECT_EQ(mac.ledger().tag_bits, 176u);
  EXPECT_EQ(mac.ledger().total_slots(), 2u);
}

TEST(Gen2Mac, CertainCaptureDecodesEveryCollision) {
  Gen2MacConfig config;
  config.impairments.capture.capture_prob = 1.0;
  config.impairments.capture.extra_decay = 1.0;
  Gen2Mac mac(config);
  for (int i = 0; i < 50; ++i) {
    const Gen2SlotResult slot = mac.run_slot(4, 22, 16);
    EXPECT_EQ(slot.outcome, SlotOutcome::kSingleton);
    EXPECT_TRUE(slot.captured);
  }
  EXPECT_EQ(mac.ledger().collision_slots, 0u);
}

TEST(Gen2Mac, CaptureProbabilityDecaysWithResponderCount) {
  Gen2MacConfig config;
  config.impairments.capture.capture_prob = 0.8;
  config.impairments.capture.extra_decay = 0.5;
  Gen2Mac pairs(config), crowds(config);
  int captured_pairs = 0, captured_crowds = 0;
  for (int i = 0; i < 2000; ++i) {
    if (pairs.run_slot(2, 4, 16).captured) ++captured_pairs;
    if (crowds.run_slot(6, 4, 16).captured) ++captured_crowds;
  }
  // P(capture | 2) = 0.8; P(capture | 6) = 0.8 * 0.5^4 = 0.05.
  EXPECT_NEAR(captured_pairs / 2000.0, 0.8, 0.05);
  EXPECT_NEAR(captured_crowds / 2000.0, 0.05, 0.03);
}

TEST(Gen2Mac, EnablingCaptureDoesNotPerturbLossReplay) {
  // Loss and capture draw from independent derived streams, so switching
  // capture on must leave the loss pattern — and thus every singleton /
  // idle verdict — untouched.
  Gen2MacConfig plain;
  plain.impairments.seed = 77;
  plain.impairments.reply_loss_prob = 0.3;
  Gen2MacConfig with_capture = plain;
  with_capture.impairments.capture.capture_prob = 1.0;
  Gen2Mac a(plain), b(with_capture);
  for (int i = 0; i < 500; ++i) {
    const Gen2SlotResult sa = a.run_slot(1, 22, 16);
    const Gen2SlotResult sb = b.run_slot(1, 22, 16);
    EXPECT_EQ(sa.outcome, sb.outcome) << "slot " << i;
    EXPECT_EQ(sa.survivors, sb.survivors) << "slot " << i;
  }
}

TEST(Gen2Mac, NoiseFloorsIdleSlotsToCollisions) {
  Gen2MacConfig config;
  config.impairments.false_busy_prob = 1.0;
  Gen2Mac mac(config);
  const Gen2SlotResult slot = mac.run_slot(0, 22, 16);
  EXPECT_EQ(slot.outcome, SlotOutcome::kCollision);
  EXPECT_TRUE(slot.false_busy);
}

// ------------------------------------------------------------- inventory

TEST(Gen2Inventory, IdentifiesEveryTagUnderBothQPolicies) {
  for (const QPolicyKind kind :
       {QPolicyKind::kQAdjust, QPolicyKind::kDfaBacklog}) {
    Gen2Mac mac(Gen2MacConfig{});
    Gen2InventoryConfig config;
    config.qpolicy.kind = kind;
    std::vector<Gen2Tag> tags;
    for (std::uint64_t i = 0; i < 300; ++i) {
      tags.emplace_back(
          rng::uniform_code(rng::HashKind::kMix64, 9, i, 32));
    }
    Gen2Inventory inventory(mac, config);
    const Gen2InventoryResult round = inventory.run(tags, 42);
    EXPECT_EQ(round.identified, 300u) << to_string(kind);
    EXPECT_EQ(round.singleton_slots, 300u) << to_string(kind);
    EXPECT_FALSE(round.q_trajectory.empty());
    EXPECT_EQ(round.slots, round.ledger.total_slots());
  }
}

TEST(Gen2Inventory, SessionFlagsMakeTheSecondPassEmpty) {
  Gen2Mac mac(Gen2MacConfig{});
  std::vector<Gen2Tag> tags;
  for (std::uint64_t i = 0; i < 64; ++i) {
    tags.emplace_back(
        rng::uniform_code(rng::HashKind::kMix64, 9, i, 32));
  }
  Gen2Inventory inventory(mac, Gen2InventoryConfig{});  // S2, target A
  EXPECT_EQ(inventory.run(tags, 1).identified, 64u);
  // Every tag now sits at B in S2; a second A-targeted round drains dry.
  EXPECT_EQ(inventory.run(tags, 2).identified, 0u);
}

TEST(Gen2Inventory, S1DecayRestoresTagsForALaterPass) {
  Gen2Mac mac(Gen2MacConfig{});
  Gen2InventoryConfig config;
  config.session = Session::kS1;
  // Long enough to survive the first inventory's slots, short enough for
  // an idle gap to expire.
  config.timers.s1_decay_slots = 4096;
  std::vector<Gen2Tag> tags;
  for (std::uint64_t i = 0; i < 32; ++i) {
    tags.emplace_back(
        rng::uniform_code(rng::HashKind::kMix64, 9, i, 32));
  }
  Gen2Inventory inventory(mac, config);
  EXPECT_EQ(inventory.run(tags, 1).identified, 32u);
  // Immediately after, the B flags still hold: the second pass drains dry.
  EXPECT_EQ(inventory.run(tags, 2).identified, 0u);
  // Leave the reader idling past the S1 persistence window; the flags
  // decay back to A and a third pass finds the whole population again.
  for (int i = 0; i < 4096; ++i) mac.run_slot(0, 4, 0);
  const Gen2InventoryResult again = inventory.run(tags, 3);
  EXPECT_EQ(again.identified, 32u);
  EXPECT_EQ(again.session_decays, 32u);
}

TEST(Gen2Inventory, SelectScopesTheRoundToTheMaskedSubtree) {
  Gen2Mac mac(Gen2MacConfig{});
  Gen2InventoryConfig config;
  config.use_select = true;
  config.select.mask = code_of(1, 1);  // EPCs starting with '1'
  std::vector<Gen2Tag> tags;
  std::uint64_t expected = 0;
  for (std::uint64_t i = 0; i < 200; ++i) {
    const BitCode code = rng::uniform_code(rng::HashKind::kMix64, 9, i, 32);
    expected += (code.value() >> 31) & 1u;
    tags.emplace_back(code);
  }
  Gen2Inventory inventory(mac, config);
  EXPECT_EQ(inventory.run(tags, 3).identified, expected);
}

TEST(Gen2Identify, Gen2DfsaIdentifiesTheWholePopulation) {
  proto::Gen2DfsaOptions options;
  const auto result = proto::identify_gen2(2000, options, 5);
  EXPECT_EQ(result.identified, 2000u);
  EXPECT_GT(result.frames, 0u);
  EXPECT_GT(result.ledger.airtime_us, 0);
}

// ------------------------------------------- channel: clean equivalence

TEST(Gen2Channel, ProbeVerdictsMatchExactChannelOnACleanLink) {
  const auto ids = make_tags(512);
  chan::ExactChannelConfig exact_config;
  chan::ExactChannel exact(ids, exact_config);
  Gen2PrefixChannel over_gen2(ids, Gen2ChannelConfig{});

  for (std::uint64_t round = 0; round < 32; ++round) {
    chan::RoundConfig config;
    config.path = rng::uniform_code(rng::HashKind::kMix64, 31, round, 32);
    exact.begin_round(config);
    over_gen2.begin_round(config);
    for (unsigned len = 0; len <= 32; ++len) {
      EXPECT_EQ(exact.query_prefix(len), over_gen2.query_prefix(len))
          << "round " << round << " len " << len;
    }
  }
  // Same probes, same slot counts — the Selects ride the downlink only.
  EXPECT_EQ(exact.ledger().total_slots(), over_gen2.ledger().total_slots());
  EXPECT_EQ(exact.ledger().idle_slots, over_gen2.ledger().idle_slots);
}

TEST(Gen2Channel, RangeQueriesMatchExactChannelOnACleanLink) {
  const auto ids = make_tags(512);
  chan::ExactChannel exact(ids, chan::ExactChannelConfig{});
  Gen2PrefixChannel over_gen2(ids, Gen2ChannelConfig{});
  for (std::uint64_t round = 0; round < 16; ++round) {
    chan::RangeFrameConfig frame;
    frame.seed = rng::derive_seed(7, round);
    frame.frame_size = 4096;
    exact.begin_range_frame(frame);
    over_gen2.begin_range_frame(frame);
    for (const std::uint64_t bound : {1ull, 17ull, 256ull, 4095ull}) {
      EXPECT_EQ(exact.query_range(bound), over_gen2.query_range(bound))
          << "round " << round << " bound " << bound;
    }
  }
}

TEST(Gen2Channel, FrameOutcomesMatchExactChannelOnACleanLink) {
  const auto ids = make_tags(512);
  chan::ExactChannel exact(ids, chan::ExactChannelConfig{});
  Gen2PrefixChannel over_gen2(ids, Gen2ChannelConfig{});
  for (const bool geometric : {false, true}) {
    chan::FrameConfig frame;
    frame.seed = geometric ? 11u : 12u;
    frame.frame_size = 64;
    frame.persistence = 0.7;
    frame.geometric = geometric;
    EXPECT_EQ(exact.run_frame(frame), over_gen2.run_frame(frame))
        << "geometric " << geometric;
  }
}

TEST(Gen2Channel, CertainCaptureLeavesProbeVerdictsUnchanged) {
  const auto ids = make_tags(512);
  Gen2ChannelConfig impaired_config;
  impaired_config.impairments.capture.capture_prob = 1.0;
  Gen2PrefixChannel clean(ids, Gen2ChannelConfig{});
  Gen2PrefixChannel impaired(ids, impaired_config);
  for (std::uint64_t round = 0; round < 16; ++round) {
    chan::RoundConfig config;
    config.path = rng::uniform_code(rng::HashKind::kMix64, 13, round, 32);
    clean.begin_round(config);
    impaired.begin_round(config);
    for (unsigned len = 0; len <= 32; ++len) {
      EXPECT_EQ(clean.query_prefix(len), impaired.query_prefix(len));
    }
  }
}

TEST(Gen2Channel, TruncateShrinksUplinkCostOfDeepProbes) {
  const auto ids = make_tags(512);
  Gen2ChannelConfig truncating;  // default: truncate = true
  Gen2ChannelConfig full;
  full.truncate = false;
  Gen2PrefixChannel cheap(ids, truncating);
  Gen2PrefixChannel dear(ids, full);
  chan::RoundConfig config;
  // Walk the path straight to one tag's manufactured code so the deep
  // probe has at least one responder.
  config.path = rng::uniform_code(truncating.hash,
                                  truncating.manufacturing_seed, ids.front(),
                                  truncating.tree_height);
  cheap.begin_round(config);
  dear.begin_round(config);
  // Probe at depth 0: every tag replies; truncated replies carry the full
  // 32-bit remainder vs a 16-bit RN16, so here truncation costs *more* —
  // the win appears past depth 16.
  cheap.query_prefix(0);
  dear.query_prefix(0);
  EXPECT_EQ(cheap.ledger().tag_bits, 512u * 32u);
  EXPECT_EQ(dear.ledger().tag_bits, 512u * 16u);
  const std::uint64_t cheap_before = cheap.ledger().tag_bits;
  const std::uint64_t dear_before = dear.ledger().tag_bits;
  EXPECT_TRUE(cheap.query_prefix(31));
  EXPECT_TRUE(dear.query_prefix(31));
  // Depth-31 probes reply with max(1, 32 - 31) = 1 bit when truncated
  // versus a full RN16: 16x cheaper per responder.
  const std::uint64_t cheap_delta = cheap.ledger().tag_bits - cheap_before;
  const std::uint64_t dear_delta = dear.ledger().tag_bits - dear_before;
  EXPECT_GE(cheap_delta, 1u);
  EXPECT_EQ(dear_delta, 16u * cheap_delta);
}

TEST(Gen2Channel, RejectsRehashRounds) {
  const auto ids = make_tags(16);
  Gen2PrefixChannel channel(ids, Gen2ChannelConfig{});
  chan::RoundConfig config;
  config.path = BitCode(0, 32);
  config.tags_rehash = true;
  EXPECT_THROW(channel.begin_round(config), PreconditionError);
}

TEST(Gen2Channel, DepthOracleAgreesWithProbedDepth) {
  const auto ids = make_tags(256);
  Gen2PrefixChannel channel(ids, Gen2ChannelConfig{});
  for (std::uint64_t round = 0; round < 16; ++round) {
    chan::RoundConfig config;
    config.path = rng::uniform_code(rng::HashKind::kMix64, 17, round, 32);
    channel.begin_round(config);
    // Binary-search the deepest busy prefix the slow way.
    unsigned probed = 0;
    for (unsigned len = 0; len <= 32; ++len) {
      if (channel.query_prefix(len)) probed = len;
    }
    channel.begin_round(config);
    EXPECT_EQ(channel.round_depth(), probed) << "round " << round;
  }
}

// ------------------------------------------------------- thread identity

TEST(Gen2Channel, TrialSweepIsByteIdenticalAcrossThreadCounts) {
  const auto ids = make_tags(256);
  auto sweep = [&](unsigned threads) {
    runtime::TrialRunner runner(threads);
    std::vector<std::uint64_t> busy_counts(8, 0);
    runner.run<std::uint64_t>(
        8,
        [&](std::uint64_t trial) {
          Gen2ChannelConfig config;
          config.manufacturing_seed = rng::derive_seed(99, 2 * trial);
          config.impairments.capture.capture_prob = 0.5;
          config.impairments.reply_loss_prob = 0.05;
          config.impairments.seed = rng::derive_seed(99, 500 + trial);
          Gen2PrefixChannel channel(ids, config);
          std::uint64_t busy = 0;
          for (std::uint64_t round = 0; round < 16; ++round) {
            chan::RoundConfig round_config;
            round_config.path = rng::uniform_code(
                rng::HashKind::kMix64, rng::derive_seed(99, 2 * trial + 1),
                round, 32);
            channel.begin_round(round_config);
            for (unsigned len = 0; len <= 32; ++len) {
              busy += channel.query_prefix(len) ? 1u : 0u;
            }
          }
          return busy;
        },
        [&](std::uint64_t trial, std::uint64_t busy) {
          busy_counts[trial] = busy;
        },
        "gen2-threads");
    return busy_counts;
  };
  const auto serial = sweep(1);
  EXPECT_EQ(serial, sweep(2));
  EXPECT_EQ(serial, sweep(8));
}

}  // namespace
}  // namespace pet::gen2
