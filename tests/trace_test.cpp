// Tests for the slot tracing facility and the Deployment missing-tag
// screening.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "channel/device_channel.hpp"
#include "core/estimator.hpp"
#include "multireader/deployment.hpp"
#include "runtime/json.hpp"
#include "sim/devices.hpp"
#include "sim/medium.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "tags/population.hpp"

namespace pet {
namespace {

TEST(Trace, CommandNamesCoverEveryVariant) {
  using namespace sim;
  EXPECT_EQ(command_name(PrefixQueryCmd{BitCode::parse("01"), 2, 32}),
            "prefix_query");
  EXPECT_EQ(command_name(RoundBeginCmd{}), "round_begin");
  EXPECT_EQ(command_name(RangeQueryCmd{5, 32}), "range_query");
  EXPECT_EQ(command_name(FrameBeginCmd{}), "frame_begin");
  EXPECT_EQ(command_name(SlotPollCmd{3, 1}), "slot_poll");
  EXPECT_EQ(command_name(AckCmd{9, 16}), "ack");
  EXPECT_EQ(command_name(IdPrefixQueryCmd{BitCode::parse("1"), 64}),
            "id_prefix_query");
  EXPECT_EQ(command_name(SplitQueryCmd{}), "split_query");
  EXPECT_EQ(command_name(SplitFeedbackCmd{SlotOutcome::kIdle, 2}),
            "split_feedback");
}

TEST(Trace, PayloadsAreReadable) {
  using namespace sim;
  EXPECT_EQ(command_payload(PrefixQueryCmd{BitCode::parse("0110"), 2, 32}),
            "01");
  EXPECT_EQ(command_payload(RangeQueryCmd{42, 32}), "42");
  EXPECT_EQ(command_payload(FrameBeginCmd{0, 128, 1.0, 32}), "f=128");
  EXPECT_EQ(command_payload(SplitFeedbackCmd{SlotOutcome::kCollision, 2}),
            "collision");
}

TEST(Trace, SinkWritesOneRowPerSlot) {
  const auto pop = tags::TagPopulation::generate(100, 1);
  sim::Simulator simulator;
  sim::Medium medium;
  std::ostringstream out;
  sim::TraceSink sink(out);
  medium.set_observer(sink.observer());

  std::vector<std::unique_ptr<sim::PetTagDevice>> devices;
  for (const TagId id : pop.ids()) {
    devices.push_back(std::make_unique<sim::PetTagDevice>(
        id, rng::HashKind::kMix64, 32,
        sim::PetTagDevice::CodeMode::kPreloaded, 0x9a9a5eedULL));
    medium.attach(devices.back().get());
  }
  const BitCode path = rng::uniform_code(rng::HashKind::kMix64, 1, 2, 32);
  for (unsigned len = 1; len <= 4; ++len) {
    (void)medium.run_slot(sim::PrefixQueryCmd{path, len, 32}, simulator);
  }

  EXPECT_EQ(sink.rows_written(), 4u);
  const std::string text = out.str();
  EXPECT_NE(text.find("slot,command,payload,outcome"), std::string::npos);
  EXPECT_NE(text.find("prefix_query"), std::string::npos);
  // 100 tags: the 1-bit prefix probe must be a collision.
  EXPECT_NE(text.find("collision"), std::string::npos);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 5)
      << "header + 4 rows";
}

TEST(Trace, JsonlRowsShareTheCsvSchema) {
  const auto pop = tags::TagPopulation::generate(100, 1);
  sim::Simulator simulator;
  sim::Medium medium;
  std::ostringstream csv_out;
  std::ostringstream jsonl_out;
  sim::TraceSink csv_sink(csv_out, sim::TraceFormat::kCsv,
                          /*write_header=*/false);
  sim::TraceSink jsonl_sink(jsonl_out, sim::TraceFormat::kJsonl);

  std::vector<std::unique_ptr<sim::PetTagDevice>> devices;
  for (const TagId id : pop.ids()) {
    devices.push_back(std::make_unique<sim::PetTagDevice>(
        id, rng::HashKind::kMix64, 32,
        sim::PetTagDevice::CodeMode::kPreloaded, 0x9a9a5eedULL));
    medium.attach(devices.back().get());
  }
  const BitCode path = rng::uniform_code(rng::HashKind::kMix64, 1, 2, 32);

  // Same slots through both sinks: the JSONL record must carry exactly the
  // CSV columns, plus the type/trial coordinates of the obs trace schema.
  for (auto* sink : {&csv_sink, &jsonl_sink}) {
    medium.set_observer(sink->observer());
    for (unsigned len = 1; len <= 3; ++len) {
      (void)medium.run_slot(sim::PrefixQueryCmd{path, len, 32}, simulator);
    }
  }
  EXPECT_EQ(csv_sink.rows_written(), 3u);
  EXPECT_EQ(jsonl_sink.rows_written(), 3u);

  const std::string jsonl = jsonl_out.str();
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 3);
  EXPECT_NE(jsonl.find("{\"type\":\"slot\",\"trial\":0,\"slot\":0,"
                       "\"command\":\"prefix_query\""),
            std::string::npos)
      << jsonl;
  EXPECT_NE(jsonl.find("\"outcome\":\"collision\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"responders\":"), std::string::npos);
  EXPECT_NE(jsonl.find("\"downlink_bits\":"), std::string::npos);
  // No header line in JSONL: every line is an object.
  EXPECT_EQ(jsonl.front(), '{');

  // The CSV side saw the same three slots (fields match line for line).
  const std::string csv = csv_out.str();
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
  EXPECT_NE(csv.find("prefix_query"), std::string::npos);
}

TEST(Trace, JsonlEscapesPayloadText) {
  // command_payload never emits quotes today, but the sink must not rely
  // on that: render a payload through the same escaping path and check a
  // hostile string survives.
  EXPECT_EQ(runtime::json_escape("f=\"12\"\n"), "f=\\\"12\\\"\\n");
  std::ostringstream out;
  sim::TraceSink sink(out, sim::TraceFormat::kJsonl);
  EXPECT_EQ(sink.format(), sim::TraceFormat::kJsonl);
  EXPECT_EQ(out.str(), "");  // header-free
}

TEST(MissingTags, CleanInventoryReportsNearZeroMissing) {
  multi::DeploymentConfig config;
  config.accuracy = {0.05, 0.05};
  multi::Deployment site(config, 20000);
  const auto missing = site.estimate_missing(20000);
  EXPECT_LT(missing.estimate, 0.05 * 20000.0);
  EXPECT_LE(missing.interval.lo, missing.estimate);
}

TEST(MissingTags, DetectsABulkLoss) {
  multi::DeploymentConfig config;
  config.accuracy = {0.05, 0.05};
  multi::Deployment site(config, 20000);
  site.remove_tags(5000);  // 25% of the manifest walks away
  const auto missing = site.estimate_missing(20000);
  EXPECT_NEAR(missing.estimate, 5000.0, 1500.0);
  EXPECT_GT(missing.interval.lo, 2500.0);
  EXPECT_LT(missing.interval.hi, 7500.0);
}

TEST(MissingTags, AuditAccuracyOverrideTightensTheInterval) {
  multi::DeploymentConfig config;
  config.accuracy = {0.10, 0.10};
  multi::Deployment site(config, 30000);
  site.remove_tags(3000);
  const auto loose = site.estimate_missing(30000);
  const auto tight = site.estimate_missing(
      30000, stats::AccuracyRequirement{0.02, 0.05});
  EXPECT_LT(tight.interval.hi - tight.interval.lo,
            loose.interval.hi - loose.interval.lo);
  EXPECT_GT(tight.rounds, loose.rounds);
  EXPECT_NEAR(tight.estimate, 3000.0, 800.0);
}

TEST(MissingTags, SurplusClampsAtZero) {
  multi::DeploymentConfig config;
  config.accuracy = {0.10, 0.10};
  multi::Deployment site(config, 10000);
  site.add_tags(3000);  // more present than the manifest expects
  const auto missing = site.estimate_missing(10000);
  EXPECT_DOUBLE_EQ(missing.estimate, 0.0);
  EXPECT_DOUBLE_EQ(missing.interval.lo, 0.0);
}

}  // namespace
}  // namespace pet
