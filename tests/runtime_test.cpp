// Tests for the pet::runtime trial-execution engine: thread-pool shutdown
// and exception semantics, the trial runner's ordered deterministic fold
// (bit-identical aggregates for 1/2/8 threads, the acceptance criterion of
// the runtime subsystem), and the BENCH_*.json report schema.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/estimator.hpp"
#include "harness/experiment.hpp"
#include "runtime/json.hpp"
#include "runtime/progress.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/trial_runner.hpp"

namespace pet::runtime {
namespace {

TEST(ThreadPool, RunsEveryPendingTaskOnShutdown) {
  std::atomic<int> executed{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      futures.push_back(pool.submit([&executed] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        executed.fetch_add(1);
      }));
    }
    // Destructor drains: everything already queued still runs.
  }
  EXPECT_EQ(executed.load(), 64);
  for (auto& future : futures) {
    EXPECT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
  }
}

TEST(ThreadPool, PropagatesTaskExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.submit([] {});
  auto bad = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_NO_THROW(ok.get());
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The pool survives a throwing task and keeps executing.
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; }).get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, ExecutesAcrossAllQueues) {
  // Round-robin submission lands tasks on every worker queue; with more
  // tasks than workers everything still completes exactly once.
  ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  std::vector<std::future<void>> futures;
  for (std::uint64_t i = 1; i <= 100; ++i) {
    futures.push_back(pool.submit([&sum, i] { sum.fetch_add(i); }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(sum.load(), 5050u);
}

TEST(TrialRunner, FoldsInAscendingTrialOrder) {
  TrialRunner runner(8);
  std::vector<std::uint64_t> order;
  runner.run<std::uint64_t>(
      100, [](std::uint64_t i) { return i * i; },
      [&](std::uint64_t i, std::uint64_t&& value) {
        EXPECT_EQ(value, i * i);
        order.push_back(i);
      });
  ASSERT_EQ(order.size(), 100u);
  for (std::uint64_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(TrialRunner, FloatAggregateBitIdenticalAcrossThreadCounts) {
  // The fold performs the serial loop's floating-point additions in the
  // serial order, so even a non-associative reduction is bit-stable.
  auto reduce = [](unsigned threads) {
    TrialRunner runner(threads);
    double acc = 0.0;
    runner.run<double>(
        1000,
        [](std::uint64_t i) { return 1.0 / (1.0 + static_cast<double>(i)); },
        [&](std::uint64_t, double&& term) { acc += term; });
    return acc;
  };
  const double serial = reduce(1);
  EXPECT_EQ(serial, reduce(2));
  EXPECT_EQ(serial, reduce(8));
}

TEST(TrialRunner, PropagatesTrialExceptionAfterSweepCompletes) {
  TrialRunner runner(4);
  std::atomic<int> completed{0};
  const auto sweep = [&] {
    runner.run<int>(
        50,
        [&](std::uint64_t i) {
          if (i == 17) throw std::invalid_argument("trial 17 failed");
          completed.fetch_add(1);
          return 0;
        },
        [](std::uint64_t, int&&) {});
  };
  EXPECT_THROW(sweep(), std::invalid_argument);
  // Every other trial still ran to completion before the rethrow.
  EXPECT_EQ(completed.load(), 49);
}

TEST(TrialRunner, ZeroTrialsIsANoOp) {
  TrialRunner runner(2);
  runner.run<int>(
      0, [](std::uint64_t) { return 1; },
      [](std::uint64_t, int&&) { FAIL() << "fold must not run"; });
}

TEST(TrialRunner, ConfigureRebuildsThePool) {
  TrialRunner runner(2);
  EXPECT_EQ(runner.thread_count(), 2u);
  runner.configure(5, false);
  EXPECT_EQ(runner.thread_count(), 5u);
  EXPECT_FALSE(runner.progress_enabled());
  runner.configure(5, true);
  EXPECT_TRUE(runner.progress_enabled());
}

// The acceptance criterion: the same master seed produces byte-identical
// BENCH_*.json rows for 1 and 8 threads.  Reproduces a fig5-style cell
// through the real experiment driver and the real report serializer.
TEST(TrialRunner, BenchRowsByteIdenticalFor1And8Threads) {
  const stats::AccuracyRequirement req{0.2, 0.2};
  auto rows_at = [&](unsigned threads) {
    runtime::global_runner().configure(threads, false);
    BenchReport report("runtime_test", threads);
    const auto pet =
        bench::run_pet(3000, core::PetConfig{}, req, 32, 24, 77);
    const auto lof =
        bench::run_lof(3000, proto::LofConfig{}, req, 16, 24, 78);
    report.add_row(
        "cell", {"pet slots", "pet acc", "lof slots", "lof acc"},
        {std::to_string(pet.mean_slots_per_estimate),
         std::to_string(pet.summary.accuracy()),
         std::to_string(lof.mean_slots_per_estimate),
         std::to_string(lof.summary.accuracy())});
    return report.rows_json();
  };
  const std::string serial = rows_at(1);
  EXPECT_EQ(serial, rows_at(2));
  EXPECT_EQ(serial, rows_at(8));
  runtime::global_runner().configure(0, false);
}

TEST(TrialRunner, RawEstimatesIdenticalAcrossThreadCounts) {
  auto estimates_at = [](unsigned threads) {
    runtime::global_runner().configure(threads, false);
    return bench::run_pet(2000, core::PetConfig{}, {0.2, 0.2}, 16, 20, 5)
        .summary.raw_estimates();
  };
  const auto serial = estimates_at(1);
  EXPECT_EQ(serial, estimates_at(8));
  runtime::global_runner().configure(0, false);
}

TEST(Progress, CountsTicksWithoutAReporterThread) {
  ProgressMeter meter(10, "test", /*enabled=*/false);
  for (int i = 0; i < 7; ++i) meter.tick();
  EXPECT_EQ(meter.done(), 7u);
}

TEST(Progress, EnabledMeterStartsAndStopsCleanly) {
  ProgressMeter meter(4, "test sweep", /*enabled=*/true);
  for (int i = 0; i < 4; ++i) meter.tick();
  // Destructor joins the reporter; nothing painted inside the 1 s grace.
}

TEST(Progress, InjectedSinkResolvesAutoToPlainStyle) {
  // A captured stream is not a terminal, so kAuto must fall back to the
  // plain line-per-update style even if the test runs on a TTY.
  std::ostringstream captured;
  ProgressConfig config;
  config.sink = &captured;
  ProgressMeter meter(10, "capture", /*enabled=*/true, config);
  EXPECT_EQ(meter.style(), ProgressConfig::Style::kPlain);
}

TEST(Progress, PlainModeEmitsWholeLinesWithoutAnsiEscapes) {
  std::ostringstream captured;
  ProgressConfig config;
  config.style = ProgressConfig::Style::kPlain;
  config.sink = &captured;
  config.first_paint = std::chrono::milliseconds(5);
  config.plain_repaint = std::chrono::milliseconds(10);
  {
    ProgressMeter meter(8, "plain sweep", /*enabled=*/true, config);
    for (int i = 0; i < 8; ++i) meter.tick();
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
  }
  const std::string text = captured.str();
  ASSERT_FALSE(text.empty()) << "expected at least one status line";
  // Line-per-update output: no carriage returns, no ANSI erase sequences,
  // every paint terminated by a newline.
  EXPECT_EQ(text.find('\r'), std::string::npos) << text;
  EXPECT_EQ(text.find("\033["), std::string::npos) << text;
  EXPECT_EQ(text.back(), '\n');
  EXPECT_NE(text.find("plain sweep: 8/8 trials"), std::string::npos) << text;
}

TEST(Progress, AnsiModeRepaintsInPlaceAndErasesOnExit) {
  std::ostringstream captured;
  ProgressConfig config;
  config.style = ProgressConfig::Style::kAnsi;  // forced despite the sink
  config.sink = &captured;
  config.first_paint = std::chrono::milliseconds(5);
  config.repaint = std::chrono::milliseconds(10);
  {
    ProgressMeter meter(4, "ansi sweep", /*enabled=*/true, config);
    for (int i = 0; i < 4; ++i) meter.tick();
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
  }
  const std::string text = captured.str();
  ASSERT_FALSE(text.empty());
  EXPECT_NE(text.find("\r\033[2K"), std::string::npos) << text;
  // The destructor's erase leaves the stream ending on a clean wipe.
  const std::string erase = "\r\033[2K";
  ASSERT_GE(text.size(), erase.size());
  EXPECT_EQ(text.substr(text.size() - erase.size()), erase);
}

TEST(ThreadPool, StatsCountSubmittedAndExecutedTasks) {
  ThreadPool pool(3);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 60; ++i) {
    futures.push_back(pool.submit([] {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }));
  }
  for (auto& future : futures) future.get();
  const ThreadPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.submitted, 60u);
  ASSERT_EQ(stats.worker_tasks.size(), 3u);
  std::uint64_t executed = 0;
  for (const std::uint64_t w : stats.worker_tasks) executed += w;
  EXPECT_EQ(executed, 60u);
  EXPECT_GE(stats.max_queue_depth, 1u);
  // stolen is scheduling-dependent: only sanity-bound it.
  EXPECT_LE(stats.stolen, 60u);
}

TEST(Json, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(json_escape(std::string("\x01", 1)), "\\u0001");
}

TEST(Json, BenchReportSchemaIsStable) {
  BenchReport report("demo_target", 8);
  report.set_wall_seconds(1.25);
  report.add_row("t1", {"eps", "slots"}, {"0.05", "1234"});
  report.add_row("t2", {"delta"}, {"0.01"});
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"target\": \"demo_target\""), std::string::npos);
  EXPECT_NE(json.find("\"threads\": 8"), std::string::npos);
  EXPECT_NE(json.find("\"wall_seconds\": 1.250"), std::string::npos);
  EXPECT_NE(json.find("{\"table\": \"t1\", \"eps\": \"0.05\", "
                      "\"slots\": \"1234\"}"),
            std::string::npos);
  EXPECT_EQ(report.row_count(), 2u);
  // rows_json is exactly the thread-invariant portion.
  EXPECT_NE(json.find(report.rows_json()), std::string::npos);
}

TEST(Json, BenchReportRejectsMismatchedRow) {
  BenchReport report("x", 1);
  EXPECT_THROW(report.add_row("t", {"a", "b"}, {"only"}), PreconditionError);
}

}  // namespace
}  // namespace pet::runtime
