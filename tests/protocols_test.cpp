// Tests for src/protocols: FNEB, LoF, UPE, EZB and the identification
// baselines.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "channel/exact_channel.hpp"
#include "channel/sampled_channel.hpp"
#include "common/ensure.hpp"
#include "protocols/ezb.hpp"
#include "protocols/fneb.hpp"
#include "protocols/identification.hpp"
#include "protocols/lof.hpp"
#include "protocols/upe.hpp"
#include "tags/population.hpp"

namespace pet::proto {
namespace {

std::vector<TagId> make_tags(std::size_t n, std::uint64_t seed) {
  const auto pop = tags::TagPopulation::generate(n, seed);
  return {pop.ids().begin(), pop.ids().end()};
}

// --------------------------------------------------------------------- FNEB

TEST(Fneb, PlannedRoundsMatchClosedForm) {
  // m = ceil((c / eps)^2): (2.5758 / 0.05)^2 = 2653.96 -> 2654.
  const FnebEstimator est(FnebConfig{}, {0.05, 0.01});
  EXPECT_EQ(est.planned_rounds(), 2654u);
  const FnebEstimator loose(FnebConfig{}, {0.20, 0.01});
  EXPECT_EQ(loose.planned_rounds(), 166u);
}

TEST(Fneb, FindsFirstNonemptySlotExactly) {
  const auto tags = make_tags(64, 1);
  chan::ExactChannel channel(tags);
  const FnebEstimator est(FnebConfig{}, {0.1, 0.05});
  const chan::RangeFrameConfig frame{42, 1 << 16, 32, 32};

  std::uint64_t expected = frame.frame_size + 1;
  for (const TagId id : tags) {
    expected = std::min(expected,
                        rng::uniform_slot(rng::HashKind::kMix64, frame.seed,
                                          id, frame.frame_size));
  }
  channel.begin_range_frame(frame);
  EXPECT_EQ(est.find_first_nonempty(channel, frame.frame_size), expected);
}

TEST(Fneb, FirstNonemptySearchCostsLogFSlots) {
  const auto tags = make_tags(64, 2);
  chan::ExactChannel channel(tags);
  const FnebEstimator est(FnebConfig{}, {0.1, 0.05});
  channel.begin_range_frame(chan::RangeFrameConfig{7, 1 << 16, 32, 32});
  (void)est.find_first_nonempty(channel, 1 << 16);
  EXPECT_LE(channel.ledger().total_slots(), 17u) << "log2(2^16) + 1";
}

TEST(Fneb, EmptyRegionEstimatesZero) {
  chan::ExactChannel channel(std::vector<TagId>{});
  const FnebEstimator est(FnebConfig{}, {0.1, 0.05});
  const auto result = est.estimate_with_rounds(channel, 5, 1);
  EXPECT_DOUBLE_EQ(result.n_hat, 0.0);
  EXPECT_EQ(result.ledger.total_slots(), 5u)
      << "one probe certifies each empty frame";
}

TEST(Fneb, EstimatesWithinContractOnSampledChannel) {
  const stats::AccuracyRequirement req{0.1, 0.05};
  const FnebEstimator est(FnebConfig{}, req);
  chan::SampledChannel channel(50000, 3);
  int inside = 0;
  constexpr int kTrials = 20;
  for (int t = 0; t < kTrials; ++t) {
    const auto r = est.estimate(channel, static_cast<std::uint64_t>(t));
    if (std::abs(r.n_hat - 50000.0) <= 0.1 * 50000.0) ++inside;
  }
  EXPECT_GE(inside, kTrials - 1);
}

TEST(Fneb, AdaptiveShrinkingReducesSlots) {
  chan::SampledChannel adaptive_channel(50000, 4);
  chan::SampledChannel fixed_channel(50000, 4);
  FnebConfig adaptive;  // default on
  FnebConfig fixed;
  fixed.adaptive = false;
  const auto ra = FnebEstimator(adaptive, {0.1, 0.05})
                      .estimate_with_rounds(adaptive_channel, 200, 5);
  const auto rf = FnebEstimator(fixed, {0.1, 0.05})
                      .estimate_with_rounds(fixed_channel, 200, 5);
  EXPECT_LT(ra.ledger.total_slots(), rf.ledger.total_slots());
}

// ---------------------------------------------------------------------- LoF

TEST(Lof, PlannedRoundsUseTheFmDeviation) {
  const LofEstimator est(LofConfig{}, {0.05, 0.01});
  // (c * 1.12127 / log2(1.05))^2 = 1683.5... -> within a couple of rounds.
  EXPECT_NEAR(static_cast<double>(est.planned_rounds()), 1684.0, 3.0);
}

TEST(Lof, EstimatesWithinContractOnSampledChannel) {
  const stats::AccuracyRequirement req{0.1, 0.05};
  const LofEstimator est(LofConfig{}, req);
  chan::SampledChannel channel(50000, 6);
  int inside = 0;
  constexpr int kTrials = 20;
  for (int t = 0; t < kTrials; ++t) {
    const auto r = est.estimate(channel, static_cast<std::uint64_t>(t));
    if (std::abs(r.n_hat - 50000.0) <= 0.1 * 50000.0) ++inside;
  }
  EXPECT_GE(inside, kTrials - 1);
}

TEST(Lof, FullFrameCostsFrameSizeSlotsPerRound) {
  chan::SampledChannel channel(1000, 7);
  const LofEstimator est(LofConfig{}, {0.1, 0.05});
  const auto r = est.estimate_with_rounds(channel, 10, 1);
  EXPECT_EQ(r.ledger.total_slots(), 320u) << "32 slots x 10 rounds";
}

TEST(Lof, EarlyStopCreditsUnusedTail) {
  chan::SampledChannel channel(1000, 8);
  LofConfig config;
  config.early_stop = true;
  const auto r =
      LofEstimator(config, {0.1, 0.05}).estimate_with_rounds(channel, 10, 1);
  // First zero for n = 1000 sits near log2(0.77 * 1000) ~ 9.6, so the
  // early-stopping reader uses far fewer than 320 slots.
  EXPECT_LT(r.ledger.total_slots(), 200u);
  EXPECT_GT(r.ledger.total_slots(), 50u);
}

TEST(Lof, EmptyRegionEstimatesNearZero) {
  chan::ExactChannel channel(std::vector<TagId>{});
  const auto r = LofEstimator(LofConfig{}, {0.1, 0.05})
                     .estimate_with_rounds(channel, 10, 1);
  EXPECT_NEAR(r.n_hat, 1.0 / kFmPhi, 0.5) << "R = 0 reads as n ~ 1.3";
}

// ---------------------------------------------------------------------- UPE

TEST(Upe, EstimatesWithCorrectPrior) {
  UpeConfig config;
  config.expected_n = 50000.0;
  const UpeEstimator est(config, {0.1, 0.05});
  chan::SampledChannel channel(50000, 9);
  int inside = 0;
  constexpr int kTrials = 20;
  for (int t = 0; t < kTrials; ++t) {
    const auto r = est.estimate(channel, static_cast<std::uint64_t>(t));
    // The contract band is 10%; test at 15% to keep the statistical margin
    // comfortable (the per-trial miss probability at 10% is a few percent).
    if (std::abs(r.n_hat - 50000.0) <= 0.15 * 50000.0) ++inside;
  }
  EXPECT_GE(inside, kTrials - 1);
}

TEST(Upe, BadlyWrongPriorDegrades) {
  // The documented UPE weakness PET removes: a 100x-off prior saturates the
  // frame and the zero estimator collapses.
  UpeConfig config;
  config.expected_n = 500.0;  // true n = 50000
  const UpeEstimator est(config, {0.1, 0.05});
  chan::SampledChannel channel(50000, 10);
  const auto r = est.estimate(channel, 1);
  EXPECT_GT(std::abs(r.n_hat - 50000.0), 0.2 * 50000.0);
}

TEST(Upe, CollisionFractionInversionRoundTrips) {
  for (const double rho : {0.1, 0.5, 1.0, 1.59, 3.0, 8.0}) {
    const double fraction = 1.0 - std::exp(-rho) * (1.0 + rho);
    EXPECT_NEAR(invert_collision_fraction(fraction), rho, 1e-9)
        << "rho=" << rho;
  }
  EXPECT_DOUBLE_EQ(invert_collision_fraction(0.0), 0.0);
  EXPECT_THROW((void)invert_collision_fraction(1.0), PreconditionError);
}

TEST(Upe, CollisionEstimatorAlsoWorks) {
  UpeConfig config;
  config.expected_n = 50000.0;
  config.variant = UpeVariant::kCollisionEstimator;
  const UpeEstimator est(config, {0.1, 0.05});
  chan::SampledChannel channel(50000, 19);
  int inside = 0;
  constexpr int kTrials = 15;
  for (int t = 0; t < kTrials; ++t) {
    const auto r = est.estimate(channel, static_cast<std::uint64_t>(t));
    if (std::abs(r.n_hat - 50000.0) <= 0.15 * 50000.0) ++inside;
  }
  EXPECT_GE(inside, kTrials - 1);
}

TEST(Upe, CombinedEstimatorBlendsBoth) {
  UpeConfig zero;
  zero.expected_n = 50000.0;
  UpeConfig coll = zero;
  coll.variant = UpeVariant::kCollisionEstimator;
  UpeConfig both = zero;
  both.variant = UpeVariant::kCombined;
  chan::SampledChannel c1(50000, 20);
  chan::SampledChannel c2(50000, 20);
  chan::SampledChannel c3(50000, 20);
  const stats::AccuracyRequirement req{0.1, 0.05};
  const double nz = UpeEstimator(zero, req).estimate(c1, 1).n_hat;
  const double nc = UpeEstimator(coll, req).estimate(c2, 1).n_hat;
  const double nb = UpeEstimator(both, req).estimate(c3, 1).n_hat;
  // Same channel seed -> same frames -> the combined value is the average.
  EXPECT_NEAR(nb, 0.5 * (nz + nc), 1e-9);
}

TEST(Upe, PersistenceIsClampedToProbabilityRange) {
  UpeConfig config;
  config.frame_size = 512;
  config.expected_n = 10.0;  // would give p > 1
  EXPECT_DOUBLE_EQ(config.persistence(), 1.0);
}

// ---------------------------------------------------------------------- EZB

TEST(Ezb, EstimatesWithoutAnyPrior) {
  const EzbEstimator est(EzbConfig{}, {0.1, 0.05});
  for (const std::uint64_t n : {500ull, 50000ull, 2000000ull}) {
    chan::SampledChannel channel(n, n);
    const auto r = est.estimate(channel, 1);
    EXPECT_NEAR(r.n_hat, static_cast<double>(n), 0.15 * static_cast<double>(n))
        << "n=" << n;
  }
}

TEST(Ezb, EmptyRegionEstimatesZero) {
  chan::ExactChannel channel(std::vector<TagId>{});
  const auto r = EzbEstimator(EzbConfig{}, {0.1, 0.05}).estimate(channel, 1);
  EXPECT_DOUBLE_EQ(r.n_hat, 0.0);
}

// ------------------------------------------------------------ identification

TEST(Dfsa, IdentifiesEveryTag) {
  const auto tags = make_tags(500, 11);
  const auto result = identify_dfsa(tags, DfsaConfig{}, 1);
  EXPECT_EQ(result.identified, 500u);
  EXPECT_GT(result.ledger.total_slots(), 500u)
      << "identification needs > 1 slot per tag";
}

TEST(Dfsa, SampledMatchesDeviceScaling) {
  const auto tags = make_tags(500, 12);
  const auto device = identify_dfsa(tags, DfsaConfig{}, 1);
  const auto sampled = identify_dfsa_sampled(500, DfsaConfig{}, 2);
  EXPECT_EQ(sampled.identified, 500u);
  // Same protocol, same adaptation rule: slot totals within 25%.
  const double a = static_cast<double>(device.ledger.total_slots());
  const double b = static_cast<double>(sampled.ledger.total_slots());
  EXPECT_LT(std::abs(a - b) / a, 0.25);
}

TEST(Dfsa, SlotsGrowLinearlyInN) {
  const auto small = identify_dfsa_sampled(10000, DfsaConfig{}, 3);
  const auto large = identify_dfsa_sampled(40000, DfsaConfig{}, 3);
  const double ratio = static_cast<double>(large.ledger.total_slots()) /
                       static_cast<double>(small.ledger.total_slots());
  EXPECT_NEAR(ratio, 4.0, 0.8) << "Theta(n) identification cost";
}

TEST(TreeWalk, IdentifiesEveryTag) {
  const auto tags = make_tags(300, 13);
  const auto result = identify_treewalk(tags, TreeWalkConfig{});
  EXPECT_EQ(result.identified, 300u);
}

TEST(TreeWalk, SampledMatchesDeviceSlotCounts) {
  const auto tags = make_tags(400, 14);
  const auto device = identify_treewalk(tags, TreeWalkConfig{});
  const auto sampled = identify_treewalk_sampled(400, TreeWalkConfig{}, 5);
  EXPECT_EQ(sampled.identified, 400u);
  const double a = static_cast<double>(device.ledger.total_slots());
  const double b = static_cast<double>(sampled.ledger.total_slots());
  EXPECT_LT(std::abs(a - b) / a, 0.2);
}

TEST(TreeWalk, SlotsMatchTheoreticalConstant) {
  // Binary tree walking visits ~2.885 n nodes for large n.
  const auto result = identify_treewalk_sampled(50000, TreeWalkConfig{}, 6);
  const double per_tag =
      static_cast<double>(result.ledger.total_slots()) / 50000.0;
  EXPECT_NEAR(per_tag, 2.885, 0.15);
}

TEST(TreeWalk, EmptyPopulationCostsOneProbe) {
  const auto result = identify_treewalk_sampled(0, TreeWalkConfig{}, 7);
  EXPECT_EQ(result.identified, 0u);
  EXPECT_EQ(result.ledger.total_slots(), 1u);
}

}  // namespace
}  // namespace pet::proto
