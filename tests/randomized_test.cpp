// Randomized consistency suite: a seeded mini-quickcheck that draws random
// scenario configurations (population size, tree height, search mode, hash
// family, back end) and checks the library's cross-cutting invariants on
// each.  Failures print the scenario seed for exact replay.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "channel/device_channel.hpp"
#include "channel/exact_channel.hpp"
#include "channel/sorted_pet_channel.hpp"
#include "core/confidence.hpp"
#include "core/estimator.hpp"
#include "core/theory.hpp"
#include "rng/prng.hpp"
#include "tags/population.hpp"

namespace pet {
namespace {

struct Scenario {
  std::uint64_t seed = 0;
  std::size_t n = 0;
  unsigned tree_height = 32;
  core::SearchMode search = core::SearchMode::kBinaryStrict;
  rng::HashKind hash = rng::HashKind::kMix64;
  std::uint64_t rounds = 0;

  static Scenario draw(std::uint64_t scenario_seed) {
    rng::Xoshiro256ss gen(scenario_seed);
    Scenario s;
    s.seed = scenario_seed;
    // Population: log-uniform in [1, ~8000].
    const double u = static_cast<double>(gen() >> 11) * 0x1.0p-53;
    s.n = static_cast<std::size_t>(std::exp(u * std::log(8000.0))) + 0;
    s.tree_height = 24 + static_cast<unsigned>(gen() % 41);  // 24..64
    s.search = static_cast<core::SearchMode>(gen() % 3);
    s.hash = static_cast<rng::HashKind>(gen() % 3);
    s.rounds = 20 + gen() % 200;
    return s;
  }

  [[nodiscard]] std::string describe() const {
    return "scenario seed=" + std::to_string(seed) + " n=" +
           std::to_string(n) + " H=" + std::to_string(tree_height) +
           " search=" + std::string(core::to_string(search)) + " hash=" +
           std::string(rng::to_string(hash)) + " rounds=" +
           std::to_string(rounds);
  }
};

class RandomScenario : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomScenario, CrossBackendAndCrossModeConsistency) {
  const Scenario s = Scenario::draw(GetParam() * 1315423911ULL + 17);
  SCOPED_TRACE(s.describe());

  const auto pop = tags::TagPopulation::generate(s.n, s.seed);
  const std::vector<TagId> tags(pop.ids().begin(), pop.ids().end());

  chan::ExactChannelConfig exact_config;
  exact_config.tree_height = s.tree_height;
  exact_config.hash = s.hash;
  chan::ExactChannelConfig exact_config2 = exact_config;
  chan::SortedPetChannelConfig sorted_config;
  sorted_config.tree_height = s.tree_height;
  sorted_config.hash = s.hash;

  chan::ExactChannel exact(tags, exact_config);
  chan::ExactChannel exact_again(tags, exact_config2);
  chan::SortedPetChannel sorted(tags, sorted_config);

  core::PetConfig pet;
  pet.tree_height = s.tree_height;
  pet.search = s.search;
  const core::PetEstimator estimator(pet, {0.3, 0.3});

  // Invariant A: bit-identical depths across Exact and Sorted back ends,
  // and full determinism in the run seed.
  const auto r1 = estimator.estimate_with_rounds(exact, s.rounds, s.seed);
  const auto r2 =
      estimator.estimate_with_rounds(exact_again, s.rounds, s.seed);
  const auto r3 = estimator.estimate_with_rounds(sorted, s.rounds, s.seed);
  EXPECT_EQ(r1.depths, r2.depths);
  EXPECT_EQ(r1.depths, r3.depths);
  EXPECT_DOUBLE_EQ(r1.n_hat, r3.n_hat);

  // Invariant B: every depth is within [0, H].
  for (const unsigned d : r1.depths) EXPECT_LE(d, s.tree_height);

  // Invariant C: ledger accounting adds up (every slot classified once).
  const auto& ledger = sorted.ledger();
  EXPECT_EQ(ledger.total_slots(),
            ledger.idle_slots + ledger.singleton_slots +
                ledger.collision_slots);

  // Invariant D: slot budget respects the search-mode worst case.
  EXPECT_LE(r1.ledger.total_slots(),
            r1.rounds * pet.worst_case_slots_per_round());

  // Invariant E: the estimate is positive iff tags exist (strict/linear
  // modes certify emptiness; paper mode reports its documented floor).
  if (s.n == 0 && s.search != core::SearchMode::kBinaryPaper) {
    EXPECT_DOUBLE_EQ(r1.n_hat, 0.0);
  }
  if (s.n > 0) {
    EXPECT_GT(r1.n_hat, 0.0);
    // Invariant F: a (30%, 30%) interval from the observed depths contains
    // the point estimate and has positive width.
    const auto ci = core::confidence_interval(r1, 0.3);
    EXPECT_LE(ci.lo, ci.point);
    EXPECT_GE(ci.hi, ci.point);
  }
}

TEST_P(RandomScenario, DeviceBackendMatchesWhenAffordable) {
  const Scenario s = Scenario::draw(GetParam() * 2654435761ULL + 3);
  SCOPED_TRACE(s.describe());
  if (s.n > 1500) GTEST_SKIP() << "device fidelity reserved for small n";

  const auto pop = tags::TagPopulation::generate(s.n, s.seed);
  const std::vector<TagId> tags(pop.ids().begin(), pop.ids().end());

  chan::SortedPetChannelConfig sorted_config;
  sorted_config.tree_height = s.tree_height;
  sorted_config.hash = s.hash;
  chan::DeviceChannelConfig device_config;
  device_config.tree_height = s.tree_height;
  device_config.hash = s.hash;

  chan::SortedPetChannel sorted(tags, sorted_config);
  chan::DeviceChannel device(tags, chan::DeviceKind::kPet, device_config);

  core::PetConfig pet;
  pet.tree_height = s.tree_height;
  pet.search = s.search;
  const core::PetEstimator estimator(pet, {0.3, 0.3});
  const auto rs = estimator.estimate_with_rounds(sorted, s.rounds, s.seed);
  const auto rd = estimator.estimate_with_rounds(device, s.rounds, s.seed);
  EXPECT_EQ(rs.depths, rd.depths);
}

TEST_P(RandomScenario, TheoryMomentsMatchSimulationAtScale) {
  const Scenario s = Scenario::draw(GetParam() * 40503ULL + 99);
  SCOPED_TRACE(s.describe());
  if (s.n < 64) GTEST_SKIP() << "moment comparison needs a real population";

  // Collect many depth observations and compare against the exact law.
  const auto pop = tags::TagPopulation::generate(s.n, s.seed);
  const std::vector<TagId> tags(pop.ids().begin(), pop.ids().end());
  chan::SortedPetChannelConfig config;
  config.tree_height = s.tree_height;
  config.hash = s.hash;
  chan::SortedPetChannel channel(tags, config);
  core::PetConfig pet;
  pet.tree_height = s.tree_height;
  const core::PetEstimator estimator(pet, {0.3, 0.3});
  const auto result = estimator.estimate_with_rounds(channel, 1500, s.seed);

  double sum = 0.0;
  for (const unsigned d : result.depths) sum += d;
  const double mean = sum / static_cast<double>(result.depths.size());
  const core::DepthDistribution dist(s.n, s.tree_height);
  // 1500 rounds: SE ~ 1.87/sqrt(1500) ~ 0.05; allow 6 SE plus the
  // shared-code correlation slack.
  EXPECT_NEAR(mean, dist.mean(), 0.5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomScenario,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace pet
