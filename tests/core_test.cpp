// Tests for src/core: the Section-4.2 theory, the round planner (Eq. 20),
// the reader algorithms (Algorithms 1 and 3), and the estimator.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "channel/exact_channel.hpp"
#include "channel/sampled_channel.hpp"
#include "channel/sorted_pet_channel.hpp"
#include "common/ensure.hpp"
#include "core/anonymity.hpp"
#include "core/constants.hpp"
#include "core/estimator.hpp"
#include "core/planner.hpp"
#include "core/theory.hpp"
#include "rng/prng.hpp"
#include "stats/accuracy.hpp"
#include "stats/running_stat.hpp"
#include "tags/population.hpp"

namespace pet::core {
namespace {

std::vector<TagId> make_tags(std::size_t n, std::uint64_t seed) {
  const auto pop = tags::TagPopulation::generate(n, seed);
  return {pop.ids().begin(), pop.ids().end()};
}

TEST(Constants, MatchThePaperToFiveDecimals) {
  EXPECT_NEAR(kPhi, 1.25941, 1e-5);      // Eq. (9)
  EXPECT_NEAR(kSigmaH, 1.87271, 1e-5);   // Eq. (11)
}

TEST(DepthDistribution, PmfSumsToOne) {
  for (const std::uint64_t n : {0ull, 1ull, 10ull, 1000ull, 1000000ull}) {
    const DepthDistribution dist(n, 32);
    double total = 0.0;
    for (unsigned k = 0; k <= 32; ++k) total += dist.pmf(k);
    EXPECT_NEAR(total, 1.0, 1e-12) << "n=" << n;
  }
}

TEST(DepthDistribution, ZeroTagsConcentrateAtDepthZero) {
  const DepthDistribution dist(0, 32);
  EXPECT_DOUBLE_EQ(dist.pmf(0), 1.0);
  EXPECT_DOUBLE_EQ(dist.mean(), 0.0);
}

TEST(DepthDistribution, MeanTracksMellinAsymptotics) {
  // Eq. (9): E(d) ~= log2(phi n); the periodic wobble is < 1e-5 and the
  // O(1/sqrt n) term is tiny for these n.
  for (const std::uint64_t n : {1000ull, 10000ull, 100000ull, 1000000ull}) {
    const DepthDistribution dist(n, 48);
    EXPECT_NEAR(dist.mean(), asymptotic_mean_depth(static_cast<double>(n)),
                5e-3)
        << "n=" << n;
  }
}

TEST(DepthDistribution, StddevTracksEq11) {
  for (const std::uint64_t n : {1000ull, 50000ull, 1000000ull}) {
    const DepthDistribution dist(n, 48);
    EXPECT_NEAR(dist.stddev(), kSigmaH, 5e-3) << "n=" << n;
  }
}

TEST(DepthDistribution, TruncationShowsUpForSmallTrees) {
  // With H = 8 and n = 10^6, every path saturates at depth 8: the p ~ 0
  // regime of the paper's Section 4.2 (choose H large enough!).  The mass
  // below depth 8 underflows to exactly zero.
  const DepthDistribution dist(1000000, 8);
  EXPECT_DOUBLE_EQ(dist.cdf(7), 0.0);
  EXPECT_DOUBLE_EQ(dist.pmf(8), 1.0);
  EXPECT_DOUBLE_EQ(dist.mean(), 8.0);
}

TEST(DepthDistribution, SampleMatchesMoments) {
  const DepthDistribution dist(50000, 32);
  rng::Xoshiro256ss gen(21);
  stats::RunningStat stat;
  for (int i = 0; i < 20000; ++i) {
    stat.add(static_cast<double>(dist.sample(gen)));
  }
  EXPECT_NEAR(stat.mean(), dist.mean(), 0.05);
  EXPECT_NEAR(stat.stddev(), dist.stddev(), 0.05);
}

TEST(Estimation, EstimateFromMeanDepthInvertsAsymptoticMean) {
  for (const double n : {100.0, 5e4, 1e6}) {
    EXPECT_NEAR(estimate_from_mean_depth(asymptotic_mean_depth(n)), n,
                n * 1e-12);
  }
}

TEST(RequiredRounds, MatchesHandComputedEq20) {
  // eps = 5%, delta = 1%: c = 2.57583, sigma = 1.87271.
  // log2(1.05) = 0.070389; m = (c sigma / 0.070389)^2 = 4696.37 -> 4697.
  EXPECT_EQ(required_rounds({0.05, 0.01}), 4697u);
  // Looser eps shrinks m quadratically.
  EXPECT_EQ(required_rounds({0.20, 0.01}),
            static_cast<std::uint64_t>(
                std::ceil(std::pow(2.575829304 * kSigmaH /
                                       std::log2(1.2), 2))));
  // The max() in Eq. (20) picks the log2(1+eps) branch (smaller divisor).
  const double c = 2.575829304;
  const double lo = std::pow(c * kSigmaH / std::log2(1.0 / 0.95), 2);
  const double hi = std::pow(c * kSigmaH / std::log2(1.05), 2);
  EXPECT_GT(hi, lo);
}

TEST(RequiredRounds, MonotoneInBothParameters) {
  EXPECT_GT(required_rounds({0.05, 0.01}), required_rounds({0.10, 0.01}));
  EXPECT_GT(required_rounds({0.05, 0.01}), required_rounds({0.05, 0.05}));
}

TEST(PetConfig, SlotBudgetsPerSearchMode) {
  PetConfig config;
  config.tree_height = 32;
  config.search = SearchMode::kBinaryPaper;
  EXPECT_EQ(config.worst_case_slots_per_round(), 5u)
      << "the paper's Table 3: five slots per round at H = 32";
  config.search = SearchMode::kBinaryStrict;
  EXPECT_EQ(config.worst_case_slots_per_round(), 7u);
  config.search = SearchMode::kLinear;
  EXPECT_EQ(config.worst_case_slots_per_round(), 33u);
}

TEST(PetConfig, BeginBitsCoverPathAndSeed) {
  PetConfig config;
  EXPECT_EQ(config.begin_bits(), 32u);
  config.tags_rehash = true;
  EXPECT_EQ(config.begin_bits(), 64u);
}

class SearchModeTest : public ::testing::TestWithParam<SearchMode> {};

TEST_P(SearchModeTest, RecoversBruteForceDepth) {
  const unsigned h = 32;
  const auto tags = make_tags(300, 31);
  chan::ExactChannel channel(tags);
  PetConfig config;
  config.search = GetParam();
  const PetEstimator estimator(config, {0.2, 0.2});

  chan::ExactChannelConfig cfg;
  for (std::uint64_t r = 0; r < 40; ++r) {
    const BitCode path =
        rng::uniform_code(rng::HashKind::kMix64, r, 0x700dULL, h);
    // Brute-force d = max lcp(code, path).
    unsigned expected = 0;
    for (const TagId id : tags) {
      const BitCode code =
          rng::uniform_code(cfg.hash, cfg.manufacturing_seed, id, h);
      expected = std::max(expected, code.common_prefix_len(path));
    }
    channel.begin_round(chan::RoundConfig{path, 0, false, 32, 32});
    const auto depth = estimator.run_round(channel);
    ASSERT_TRUE(depth.has_value());
    EXPECT_EQ(*depth, expected) << to_string(GetParam()) << " round " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, SearchModeTest,
                         ::testing::Values(SearchMode::kLinear,
                                           SearchMode::kBinaryPaper,
                                           SearchMode::kBinaryStrict),
                         [](const auto& param_info) {
                           std::string name(to_string(param_info.param));
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(PetEstimator, BinaryPaperUsesExactlyFiveSlotsPerRound) {
  const auto tags = make_tags(5000, 32);
  chan::SortedPetChannel channel(tags);
  PetConfig config;  // kBinaryPaper
  const PetEstimator estimator(config, {0.1, 0.05});
  const auto result = estimator.estimate_with_rounds(channel, 100, 1);
  EXPECT_EQ(result.ledger.total_slots(), 500u) << "5 slots x 100 rounds";
}

TEST(PetEstimator, LinearUsesDepthPlusOneSlots) {
  const auto tags = make_tags(1000, 33);
  chan::SortedPetChannel channel(tags);
  PetConfig config;
  config.search = SearchMode::kLinear;
  const PetEstimator estimator(config, {0.1, 0.05});
  const auto result = estimator.estimate_with_rounds(channel, 50, 2);
  std::uint64_t expected_slots = 0;
  for (const unsigned d : result.depths) expected_slots += d + 1;
  EXPECT_EQ(result.ledger.total_slots(), expected_slots);
}

TEST(PetEstimator, StrictAndLinearAgreeOnDepths) {
  const auto tags = make_tags(256, 34);
  chan::SortedPetChannel a(tags);
  chan::SortedPetChannel b(tags);
  PetConfig linear;
  linear.search = SearchMode::kLinear;
  PetConfig strict;
  strict.search = SearchMode::kBinaryStrict;
  const auto ra =
      PetEstimator(linear, {0.1, 0.05}).estimate_with_rounds(a, 200, 3);
  const auto rb =
      PetEstimator(strict, {0.1, 0.05}).estimate_with_rounds(b, 200, 3);
  EXPECT_EQ(ra.depths, rb.depths);
  EXPECT_DOUBLE_EQ(ra.n_hat, rb.n_hat);
}

TEST(PetEstimator, EstimatesWithinContractOnSampledChannel) {
  // Statistical check of the full protocol at the Eq.-(20) round count:
  // repeated estimates of 50000 tags must fall in [47500, 52500] nearly
  // always (paper Section 3 example).
  const stats::AccuracyRequirement req{0.05, 0.01};
  const PetEstimator estimator(PetConfig{}, req);
  chan::SampledChannel channel(50000, 77);
  int inside = 0;
  constexpr int kTrials = 30;
  for (int t = 0; t < kTrials; ++t) {
    const auto result = estimator.estimate(channel, static_cast<std::uint64_t>(t));
    if (result.n_hat >= 47500.0 && result.n_hat <= 52500.0) ++inside;
  }
  EXPECT_GE(inside, kTrials - 1) << "expected >= 99% in-interval";
}

TEST(PetEstimator, PreloadedCodesStillMeetContract) {
  // Algorithm 4: codes fixed, only the estimating path varies.  The paper's
  // Section 4.5 argues the rounds stay near-independent; verify empirically
  // on the bit-exact sorted channel.
  const auto tags = make_tags(20000, 35);
  const stats::AccuracyRequirement req{0.1, 0.05};
  const PetEstimator estimator(PetConfig{}, req);
  chan::SortedPetChannel channel(tags);
  int inside = 0;
  constexpr int kTrials = 20;
  for (int t = 0; t < kTrials; ++t) {
    const auto result =
        estimator.estimate(channel, 1000 + static_cast<std::uint64_t>(t));
    if (std::abs(result.n_hat - 20000.0) <= 0.1 * 20000.0) ++inside;
  }
  EXPECT_GE(inside, kTrials - 1);
}

TEST(PetEstimator, EmptyRegionEstimatesZeroInStrictMode) {
  chan::ExactChannel channel(std::vector<TagId>{});
  PetConfig config;
  config.search = SearchMode::kBinaryStrict;
  const auto result =
      PetEstimator(config, {0.1, 0.05}).estimate_with_rounds(channel, 10, 4);
  EXPECT_DOUBLE_EQ(result.n_hat, 0.0);
}

TEST(PetEstimator, PaperModeOverestimatesEmptyRegion) {
  // The documented limitation of Algorithm 3 verbatim: it cannot represent
  // d = 0, so an empty region reads as d = 1 -> n̂ = 2/phi.
  chan::ExactChannel channel(std::vector<TagId>{});
  const auto result = PetEstimator(PetConfig{}, {0.1, 0.05})
                          .estimate_with_rounds(channel, 10, 4);
  EXPECT_NEAR(result.n_hat, 2.0 / kPhi, 1e-9);
}

TEST(PetEstimator, SingleTagIsEstimatedToOrderOne) {
  const auto tags = make_tags(1, 36);
  chan::ExactChannel channel(tags);
  PetConfig config;
  config.search = SearchMode::kBinaryStrict;
  const auto result = PetEstimator(config, {0.2, 0.2})
                          .estimate_with_rounds(channel, 400, 5);
  EXPECT_GT(result.n_hat, 0.2);
  EXPECT_LT(result.n_hat, 5.0);
}

TEST(PetEstimator, ResultLedgerIsADelta) {
  const auto tags = make_tags(100, 37);
  chan::SortedPetChannel channel(tags);
  const PetEstimator estimator(PetConfig{}, {0.1, 0.05});
  const auto first = estimator.estimate_with_rounds(channel, 10, 6);
  const auto second = estimator.estimate_with_rounds(channel, 10, 7);
  EXPECT_EQ(first.ledger.total_slots(), second.ledger.total_slots())
      << "each estimate reports only its own slots";
}

TEST(Planner, AgreesWithEstimatorAccounting) {
  const stats::AccuracyRequirement req{0.05, 0.01};
  PetConfig config;
  const PetPlan p = plan(config, req);
  EXPECT_EQ(p.rounds, 4697u);
  EXPECT_EQ(p.slots_per_round, 5u);
  EXPECT_EQ(p.total_slots, 23485u);
  EXPECT_EQ(p.tag_memory_bits, 32u);
  EXPECT_EQ(p.tag_hash_ops, 0u);

  // The simulated protocol must consume exactly the planned slots.
  chan::SampledChannel channel(50000, 1);
  const auto result = PetEstimator(config, req).estimate(channel, 1);
  EXPECT_EQ(result.ledger.total_slots(), p.total_slots);
}

TEST(Planner, RehashModeShiftsCostToHashing) {
  PetConfig config;
  config.tags_rehash = true;
  const PetPlan p = plan(config, {0.05, 0.01});
  EXPECT_EQ(p.tag_memory_bits, 0u);
  EXPECT_EQ(p.tag_hash_ops, p.rounds);
}

TEST(Planner, LinearModePlansLogNSlots) {
  PetConfig config;
  config.search = SearchMode::kLinear;
  const PetPlan p = plan(config, {0.05, 0.01}, 50000.0);
  // log2(phi * 50000) + 1 ~= 16.9 -> 17.
  EXPECT_EQ(p.slots_per_round, 17u);
}

TEST(TheoreticalPet, SamplerConcentratesAroundTruth) {
  const TheoreticalPet model(50000, 32, 4696);
  rng::Xoshiro256ss gen(5);
  stats::RunningStat stat;
  for (int i = 0; i < 50; ++i) stat.add(model.sample_estimate(gen));
  EXPECT_NEAR(stat.mean(), 50000.0, 2000.0);
  EXPECT_LT(stat.stddev(), 2500.0);
}

TEST(Anonymity, ReportStartsClean) {
  AnonymityAuditor auditor;
  EXPECT_TRUE(auditor.report().anonymous());
  EXPECT_EQ(auditor.report().slots_observed, 0u);
}

}  // namespace
}  // namespace pet::core
