// Unit tests for src/rng: PRNG streams, MD5/SHA-1 against published test
// vectors, and statistical sanity of the hash families.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>
#include <vector>

#include "rng/hash_family.hpp"
#include "rng/md5.hpp"
#include "rng/prng.hpp"
#include "rng/sha1.hpp"

namespace pet::rng {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(SplitMix64, KnownReferenceStream) {
  // Reference values for seed 1234567 from the public-domain splitmix64.c.
  SplitMix64 gen(1234567);
  EXPECT_EQ(gen(), 6457827717110365317ULL);
  EXPECT_EQ(gen(), 3203168211198807973ULL);
  EXPECT_EQ(gen(), 9817491932198370423ULL);
}

TEST(Xoshiro256, DistinctSeedsDiverge) {
  Xoshiro256ss a(1);
  Xoshiro256ss b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, LongJumpDecorrelatesStreams) {
  Xoshiro256ss a(7);
  Xoshiro256ss b(7);
  b.long_jump();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, BitsLookUniform) {
  Xoshiro256ss gen(99);
  std::array<int, 64> ones{};
  constexpr int kSamples = 4096;
  for (int i = 0; i < kSamples; ++i) {
    const std::uint64_t v = gen();
    for (int b = 0; b < 64; ++b) {
      if ((v >> b) & 1) ++ones[static_cast<std::size_t>(b)];
    }
  }
  for (int b = 0; b < 64; ++b) {
    // ~5.5 sigma band around the binomial mean.
    EXPECT_NEAR(ones[static_cast<std::size_t>(b)], kSamples / 2, 180)
        << "bit " << b;
  }
}

TEST(DeriveSeed, IsDeterministicAndSpreads) {
  EXPECT_EQ(derive_seed(1, 2), derive_seed(1, 2));
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) seen.insert(derive_seed(42, i));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Md5, Rfc1321TestVectors) {
  EXPECT_EQ(Md5::to_hex(Md5::hash("")), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(Md5::to_hex(Md5::hash("a")), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(Md5::to_hex(Md5::hash("abc")), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(Md5::to_hex(Md5::hash("message digest")),
            "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(Md5::to_hex(Md5::hash("abcdefghijklmnopqrstuvwxyz")),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(Md5::to_hex(Md5::hash(
                "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456"
                "789")),
            "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(Md5::to_hex(Md5::hash(
                "123456789012345678901234567890123456789012345678901234567890"
                "12345678901234567890")),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5, IncrementalUpdatesMatchOneShot) {
  Md5 incremental;
  incremental.update("mess");
  incremental.update("age ");
  incremental.update("digest");
  EXPECT_EQ(Md5::to_hex(incremental.finalize()),
            Md5::to_hex(Md5::hash("message digest")));
}

TEST(Md5, CrossesBlockBoundaries) {
  // 63-, 64- and 65-byte messages exercise the padding edge cases.
  const std::string base(130, 'x');
  for (const std::size_t len : {55u, 56u, 63u, 64u, 65u, 127u, 128u}) {
    Md5 split;
    const std::string msg = base.substr(0, len);
    split.update(msg.substr(0, len / 2));
    split.update(msg.substr(len / 2));
    EXPECT_EQ(Md5::to_hex(split.finalize()), Md5::to_hex(Md5::hash(msg)))
        << "len=" << len;
  }
}

TEST(Sha1, Fips180TestVectors) {
  EXPECT_EQ(Sha1::to_hex(Sha1::hash("")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(Sha1::to_hex(Sha1::hash("abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(Sha1::to_hex(Sha1::hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
  EXPECT_EQ(Sha1::to_hex(Sha1::hash("The quick brown fox jumps over the lazy "
                                    "dog")),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
}

TEST(Sha1, MillionAs) {
  Sha1 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(Sha1::to_hex(h.finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

class HashFamilyTest : public ::testing::TestWithParam<HashKind> {};

TEST_P(HashFamilyTest, IsDeterministic) {
  const HashKind kind = GetParam();
  EXPECT_EQ(uniform64(kind, 1, 2), uniform64(kind, 1, 2));
  EXPECT_NE(uniform64(kind, 1, 2), uniform64(kind, 1, 3));
  EXPECT_NE(uniform64(kind, 1, 2), uniform64(kind, 2, 2));
}

TEST_P(HashFamilyTest, UniformCodeRespectsWidth) {
  const HashKind kind = GetParam();
  for (const unsigned width : {1u, 8u, 32u, 63u, 64u}) {
    const BitCode code = uniform_code(kind, 77, 12345, width);
    EXPECT_EQ(code.width(), width);
  }
  EXPECT_THROW(uniform_code(kind, 0, 0, 0), PreconditionError);
  EXPECT_THROW(uniform_code(kind, 0, 0, 65), PreconditionError);
}

TEST_P(HashFamilyTest, UniformSlotStaysInBounds) {
  const HashKind kind = GetParam();
  for (std::uint64_t id = 0; id < 500; ++id) {
    const std::uint64_t slot = uniform_slot(kind, 5, id, 37);
    EXPECT_GE(slot, 1u);
    EXPECT_LE(slot, 37u);
  }
  EXPECT_THROW(uniform_slot(kind, 0, 0, 0), PreconditionError);
}

TEST_P(HashFamilyTest, UniformSlotLooksUniform) {
  const HashKind kind = GetParam();
  constexpr std::uint64_t kBound = 8;
  constexpr int kSamples = 8000;
  std::array<int, kBound> counts{};
  for (int id = 0; id < kSamples; ++id) {
    ++counts[uniform_slot(kind, 99, static_cast<std::uint64_t>(id), kBound) -
             1];
  }
  // chi^2 with 7 dof; 99.9th percentile ~ 24.3.
  double chi2 = 0.0;
  const double expected = static_cast<double>(kSamples) / kBound;
  for (const int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  EXPECT_LT(chi2, 24.3) << "hash " << to_string(kind);
}

TEST_P(HashFamilyTest, GeometricLevelMatchesHalvingLaw) {
  const HashKind kind = GetParam();
  constexpr int kSamples = 20000;
  std::array<int, 8> counts{};
  for (int id = 0; id < kSamples; ++id) {
    const unsigned level =
        geometric_level(kind, 7, static_cast<std::uint64_t>(id), 32);
    if (level <= counts.size()) ++counts[level - 1];
  }
  for (unsigned i = 1; i <= 4; ++i) {
    const double expected = kSamples * std::ldexp(1.0, -static_cast<int>(i));
    const double sigma = std::sqrt(expected);
    EXPECT_NEAR(counts[i - 1], expected, 5.0 * sigma)
        << "level " << i << " hash " << to_string(kind);
  }
}

TEST_P(HashFamilyTest, GeometricLevelRespectsCap) {
  const HashKind kind = GetParam();
  for (std::uint64_t id = 0; id < 2000; ++id) {
    EXPECT_LE(geometric_level(kind, 3, id, 4), 4u);
    EXPECT_GE(geometric_level(kind, 3, id, 4), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, HashFamilyTest,
                         ::testing::Values(HashKind::kMix64, HashKind::kMd5,
                                           HashKind::kSha1),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(HashFamily, KindsProduceDifferentStreams) {
  EXPECT_NE(uniform64(HashKind::kMix64, 1, 2),
            uniform64(HashKind::kMd5, 1, 2));
  EXPECT_NE(uniform64(HashKind::kMd5, 1, 2),
            uniform64(HashKind::kSha1, 1, 2));
}

}  // namespace
}  // namespace pet::rng
