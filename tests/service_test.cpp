// pet::svc — framing, retry, registry, and the fault-tolerant estimation
// service behind petd (docs/service.md).
//
// The load-bearing suites:
//   * FrameCodec.*: the decoder is *total* — truncated, corrupted,
//     oversized, or adversarial bytes produce typed errors, never UB
//     (the fuzz cases are the ASan/UBSan payload of the service label);
//   * Retry.* / Service.RetryScheduleByteIdenticalAcrossThreads: identical
//     seeded transient-fault streams yield byte-identical retry schedules
//     and responses at worker_threads 1, 2, and 8;
//   * Service.DeadlineDegradesBeforeRefusing: graceful degradation — a
//     tight deadline buys fewer rounds, an explicit degraded flag, and a
//     widened CI; an impossible one gets DEADLINE_EXCEEDED, not a lie.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <future>
#include <string>
#include <vector>

#include "rng/prng.hpp"
#include "runtime/cancel.hpp"
#include "runtime/json.hpp"
#include "runtime/trial_runner.hpp"
#include "service/chaos.hpp"
#include "service/errors.hpp"
#include "service/frame.hpp"
#include "service/messages.hpp"
#include "service/registry.hpp"
#include "service/retry.hpp"
#include "service/service.hpp"
#include "sim/faults.hpp"

namespace {

using namespace pet;

[[nodiscard]] svc::Frame test_frame(std::uint16_t command,
                                    std::vector<std::uint8_t> payload) {
  svc::Frame frame;
  frame.command = command;
  frame.payload = std::move(payload);
  return frame;
}

[[nodiscard]] bool frames_equal(const svc::Frame& a, const svc::Frame& b) {
  return a.ver_major == b.ver_major && a.ver_minor == b.ver_minor &&
         a.command == b.command && a.status == b.status &&
         a.payload == b.payload;
}

/// Drain every decodable frame/error out of a decoder.
struct DrainResult {
  std::vector<svc::Frame> frames;
  std::vector<svc::DecodeStatus> errors;
};

[[nodiscard]] DrainResult drain(svc::Decoder& decoder) {
  DrainResult result;
  svc::Frame frame;
  for (;;) {
    const svc::DecodeStatus status = decoder.next(frame);
    if (status == svc::DecodeStatus::kNeedMoreData) break;
    if (status == svc::DecodeStatus::kFrame) {
      result.frames.push_back(frame);
    } else {
      result.errors.push_back(status);
    }
  }
  return result;
}

// --- frame codec -----------------------------------------------------------

TEST(FrameCodec, EncodeDecodeIdentity) {
  for (const std::size_t size : {std::size_t{0}, std::size_t{1},
                                 std::size_t{7}, std::size_t{1024}}) {
    std::vector<std::uint8_t> payload(size);
    for (std::size_t i = 0; i < size; ++i) {
      payload[i] = static_cast<std::uint8_t>(i * 13 + 5);
    }
    svc::Frame original = test_frame(4, payload);
    original.status = 7;

    svc::Decoder decoder;
    decoder.feed(svc::encode_frame(original));
    svc::Frame decoded;
    ASSERT_EQ(decoder.next(decoded), svc::DecodeStatus::kFrame);
    EXPECT_TRUE(frames_equal(original, decoded));
    EXPECT_EQ(decoder.pending(), 0u);
    EXPECT_EQ(decoder.next(decoded), svc::DecodeStatus::kNeedMoreData);
  }
}

TEST(FrameCodec, ByteAtATimeFeedingNeedsDataUntilComplete) {
  const svc::Frame original = test_frame(2, {1, 2, 3, 4});
  const std::vector<std::uint8_t> bytes = svc::encode_frame(original);
  svc::Decoder decoder;
  svc::Frame decoded;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    decoder.feed(&bytes[i], 1);
    ASSERT_EQ(decoder.next(decoded), svc::DecodeStatus::kNeedMoreData)
        << "frame completed " << (bytes.size() - 1 - i) << " bytes early";
  }
  decoder.feed(&bytes.back(), 1);
  ASSERT_EQ(decoder.next(decoded), svc::DecodeStatus::kFrame);
  EXPECT_TRUE(frames_equal(original, decoded));
}

TEST(FrameCodec, GarbagePrefixCostsOneTypedErrorThenResyncs) {
  // A run of non-SOF garbage is reported once (kBadSof), not per byte.
  std::vector<std::uint8_t> bytes = {0x00, 0x13, 0x37, 0x42, 0x00};
  const svc::Frame original = test_frame(1, {9});
  const std::vector<std::uint8_t> encoded = svc::encode_frame(original);
  bytes.insert(bytes.end(), encoded.begin(), encoded.end());

  svc::Decoder decoder;
  decoder.feed(bytes);
  const DrainResult result = drain(decoder);
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_EQ(result.errors[0], svc::DecodeStatus::kBadSof);
  ASSERT_EQ(result.frames.size(), 1u);
  EXPECT_TRUE(frames_equal(original, result.frames[0]));
}

TEST(FrameCodec, CorruptHeaderLoseOnlyThatFrame) {
  const svc::Frame first = test_frame(3, {1, 1, 2, 3, 5, 8});
  const svc::Frame second = test_frame(4, {42});
  std::vector<std::uint8_t> bytes = svc::encode_frame(first);
  bytes[3] ^= 0x10;  // command byte: header LRC must catch it
  const std::vector<std::uint8_t> tail = svc::encode_frame(second);
  bytes.insert(bytes.end(), tail.begin(), tail.end());

  svc::Decoder decoder;
  decoder.feed(bytes);
  const DrainResult result = drain(decoder);
  ASSERT_GE(result.errors.size(), 1u);
  EXPECT_EQ(result.errors[0], svc::DecodeStatus::kBadHeaderLrc);
  for (const svc::DecodeStatus status : result.errors) {
    EXPECT_TRUE(svc::is_decode_error(status));
  }
  ASSERT_EQ(result.frames.size(), 1u);
  EXPECT_TRUE(frames_equal(second, result.frames[0]));
}

TEST(FrameCodec, CorruptPayloadDropsFrameKeepsStream) {
  const svc::Frame first = test_frame(4, {10, 20, 30, 40});
  const svc::Frame second = test_frame(5, {});
  std::vector<std::uint8_t> bytes = svc::encode_frame(first);
  bytes[svc::kHeaderSize + 1] ^= 0x01;  // payload bit: payload LRC catches it
  const std::vector<std::uint8_t> tail = svc::encode_frame(second);
  bytes.insert(bytes.end(), tail.begin(), tail.end());

  svc::Decoder decoder;
  decoder.feed(bytes);
  const DrainResult result = drain(decoder);
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_EQ(result.errors[0], svc::DecodeStatus::kBadPayloadLrc);
  ASSERT_EQ(result.frames.size(), 1u);
  EXPECT_TRUE(frames_equal(second, result.frames[0]));
}

TEST(FrameCodec, OversizedLengthFieldRejectedNotBuffered) {
  // Hand-build a header whose length field demands kMaxPayload + 1 bytes
  // with a *valid* header LRC: the only defense is the explicit size cap.
  std::vector<std::uint8_t> bytes(svc::kHeaderSize);
  bytes[0] = svc::kSof;
  bytes[1] = svc::kProtocolMajor;
  bytes[2] = svc::kProtocolMinor;
  bytes[3] = 1;  // command lo
  const std::uint32_t huge = svc::kMaxPayload + 1;
  bytes[7] = static_cast<std::uint8_t>(huge & 0xFF);
  bytes[8] = static_cast<std::uint8_t>((huge >> 8) & 0xFF);
  bytes[9] = static_cast<std::uint8_t>((huge >> 16) & 0xFF);
  bytes[10] = static_cast<std::uint8_t>((huge >> 24) & 0xFF);
  bytes[11] = svc::lrc(bytes.data(), svc::kHeaderSize - 1);

  svc::Decoder decoder;
  decoder.feed(bytes);
  svc::Frame frame;
  EXPECT_EQ(decoder.next(frame), svc::DecodeStatus::kOversized);
  // The decoder must not be waiting to buffer a gigabyte.
  EXPECT_LT(decoder.pending(), bytes.size());
}

TEST(FrameCodec, VersionSkewIsAServiceDecisionNotADecodeError) {
  // Framing is version-agnostic (resync must work on frames from any
  // speaker); semver policy lives in EstimationService::handle.
  svc::Frame skewed = test_frame(1, {});
  skewed.ver_major = svc::kProtocolMajor + 1;
  svc::Decoder decoder;
  decoder.feed(svc::encode_frame(skewed));
  svc::Frame decoded;
  ASSERT_EQ(decoder.next(decoded), svc::DecodeStatus::kFrame);

  svc::EstimationService service;
  const svc::Frame rejected = service.handle(decoded);
  EXPECT_EQ(static_cast<svc::StatusCode>(rejected.status),
            svc::StatusCode::kIncompatibleVersion);
  EXPECT_FALSE(svc::error_detail(rejected).empty());

  // A higher *minor* version is forward-compatible and must be served.
  svc::Frame minor_skew = test_frame(1, {});
  minor_skew.ver_minor = svc::kProtocolMinor + 3;
  const svc::Frame served = service.handle(minor_skew);
  EXPECT_EQ(static_cast<svc::StatusCode>(served.status),
            svc::StatusCode::kOk);
}

TEST(FrameCodec, FuzzRandomBytesNeverCrashOrBufferUnbounded) {
  // Pure adversarial input: the decoder must only ever emit typed statuses,
  // keep bounded memory, and make progress.  ASan/UBSan in the sanitizer CI
  // job turn any lurking UB into a test failure.
  rng::Xoshiro256ss rng(0xF0220u);
  svc::Decoder decoder;
  svc::Frame frame;
  std::size_t total_outcomes = 0;
  for (int chunk = 0; chunk < 200; ++chunk) {
    std::vector<std::uint8_t> bytes(1 + (rng() % 257));
    for (std::uint8_t& b : bytes) b = static_cast<std::uint8_t>(rng());
    decoder.feed(bytes);
    for (;;) {
      const svc::DecodeStatus status = decoder.next(frame);
      ++total_outcomes;
      ASSERT_LT(total_outcomes, 1u << 20) << "decoder livelocked";
      if (status == svc::DecodeStatus::kNeedMoreData) break;
      if (status == svc::DecodeStatus::kFrame) {
        EXPECT_LE(frame.payload.size(), svc::kMaxPayload);
      } else {
        EXPECT_TRUE(svc::is_decode_error(status));
      }
    }
    EXPECT_LE(decoder.pending(),
              std::size_t{svc::kMaxPayload} + svc::kHeaderSize + 1);
  }
}

TEST(FrameCodec, FuzzSingleBitFlipNeverYieldsACorruptedFrame) {
  // An LRC never absorbs a single bit flip (the sum changes by ±2^k mod
  // 256 != 0), so any frame the decoder does emit from a flipped stream
  // must be byte-exact one of the originals — corruption is detected or
  // skipped, never silently delivered.
  rng::Xoshiro256ss rng(0xB17F11Fu);
  for (int round = 0; round < 64; ++round) {
    std::vector<svc::Frame> originals;
    std::vector<std::uint8_t> stream;
    for (std::uint16_t i = 0; i < 8; ++i) {
      svc::Frame frame = test_frame(
          static_cast<std::uint16_t>(i + 1),
          {static_cast<std::uint8_t>(round), static_cast<std::uint8_t>(i)});
      const std::vector<std::uint8_t> encoded = svc::encode_frame(frame);
      stream.insert(stream.end(), encoded.begin(), encoded.end());
      originals.push_back(std::move(frame));
    }
    stream[rng() % stream.size()] ^=
        static_cast<std::uint8_t>(1u << (rng() % 8));

    svc::Decoder decoder;
    decoder.feed(stream);
    const DrainResult result = drain(decoder);
    EXPECT_LT(result.frames.size(), originals.size());
    for (const svc::Frame& decoded : result.frames) {
      const bool matches_an_original =
          std::any_of(originals.begin(), originals.end(),
                      [&](const svc::Frame& original) {
                        return frames_equal(original, decoded);
                      });
      EXPECT_TRUE(matches_an_original)
          << "decoder delivered a frame that was never sent";
    }
  }
}

// --- message schemas -------------------------------------------------------

TEST(Messages, RoundTripEveryMessage) {
  svc::EstimateRequest estimate;
  estimate.population_id = 77;
  estimate.seed = 0xAB12;
  estimate.epsilon = 0.07;
  estimate.delta = 0.01;
  estimate.deadline_slots = 1234;
  estimate.robust = 0;
  const auto estimate_rt = svc::parse_estimate_request(svc::encode(estimate));
  ASSERT_TRUE(estimate_rt.has_value());
  EXPECT_EQ(estimate_rt->population_id, estimate.population_id);
  EXPECT_EQ(estimate_rt->seed, estimate.seed);
  EXPECT_DOUBLE_EQ(estimate_rt->epsilon, estimate.epsilon);
  EXPECT_DOUBLE_EQ(estimate_rt->delta, estimate.delta);
  EXPECT_EQ(estimate_rt->deadline_slots, estimate.deadline_slots);
  EXPECT_EQ(estimate_rt->robust, estimate.robust);

  svc::EstimateReply reply;
  reply.population_id = 77;
  reply.n_hat = 4987.25;
  reply.ci_lo = 4200.0;
  reply.ci_hi = 5800.0;
  reply.rounds = 31;
  reply.planned_rounds = 40;
  reply.query_slots = 992;
  reply.retries = 2;
  reply.backoff_slots = 24;
  reply.degraded = 1;
  reply.truncated = 1;
  reply.health = 2;
  const auto reply_rt = svc::parse_estimate_reply(svc::encode(reply));
  ASSERT_TRUE(reply_rt.has_value());
  EXPECT_DOUBLE_EQ(reply_rt->n_hat, reply.n_hat);
  EXPECT_DOUBLE_EQ(reply_rt->ci_lo, reply.ci_lo);
  EXPECT_DOUBLE_EQ(reply_rt->ci_hi, reply.ci_hi);
  EXPECT_EQ(reply_rt->rounds, reply.rounds);
  EXPECT_EQ(reply_rt->planned_rounds, reply.planned_rounds);
  EXPECT_EQ(reply_rt->query_slots, reply.query_slots);
  EXPECT_EQ(reply_rt->retries, reply.retries);
  EXPECT_EQ(reply_rt->backoff_slots, reply.backoff_slots);
  EXPECT_EQ(reply_rt->degraded, reply.degraded);
  EXPECT_EQ(reply_rt->truncated, reply.truncated);
  EXPECT_EQ(reply_rt->health, reply.health);

  svc::MonitorReply monitor;
  monitor.populations = 1;
  monitor.accepted = 9;
  monitor.shed = 3;
  monitor.malformed_frames = 2;
  const auto monitor_rt = svc::parse_monitor_reply(svc::encode(monitor));
  ASSERT_TRUE(monitor_rt.has_value());
  EXPECT_EQ(monitor_rt->populations, monitor.populations);
  EXPECT_EQ(monitor_rt->accepted, monitor.accepted);
  EXPECT_EQ(monitor_rt->shed, monitor.shed);
  EXPECT_EQ(monitor_rt->malformed_frames, monitor.malformed_frames);
}

TEST(Messages, ShortAndOverlongPayloadsAreMalformed) {
  svc::EstimateRequest request;
  std::vector<std::uint8_t> bytes = svc::encode(request);

  std::vector<std::uint8_t> shortened(bytes.begin(), bytes.end() - 1);
  EXPECT_FALSE(svc::parse_estimate_request(shortened).has_value());

  std::vector<std::uint8_t> overlong = bytes;
  overlong.push_back(0xEE);  // trailing garbage is malformed, not ignored
  EXPECT_FALSE(svc::parse_estimate_request(overlong).has_value());

  EXPECT_FALSE(svc::parse_estimate_request({}).has_value());
  EXPECT_TRUE(svc::parse_estimate_request(bytes).has_value());
}

TEST(Messages, ErrorFramesCarryDetailStrings) {
  const svc::Frame error = svc::make_error(
      svc::CommandId::kEstimate,
      static_cast<std::uint16_t>(svc::StatusCode::kDeadlineExceeded),
      "budget too small");
  EXPECT_EQ(static_cast<svc::StatusCode>(error.status),
            svc::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(svc::error_detail(error), "budget too small");
  EXPECT_TRUE(svc::is_retryable(svc::StatusCode::kResourceExhausted));
  EXPECT_TRUE(svc::is_retryable(svc::StatusCode::kUnavailable));
  EXPECT_FALSE(svc::is_retryable(svc::StatusCode::kInvalidArgument));
}

// --- retry policy ----------------------------------------------------------

TEST(Retry, ZeroJitterLadderIsTheCappedExponential) {
  svc::RetryPolicy policy;
  policy.max_attempts = 8;
  policy.base_backoff_slots = 8;
  policy.max_backoff_slots = 256;
  policy.jitter = 0.0;
  const std::vector<std::uint64_t> schedule =
      svc::materialize_schedule(policy, 42);
  const std::vector<std::uint64_t> expected = {8, 16, 32, 64, 128, 256, 256};
  EXPECT_EQ(schedule, expected);
}

TEST(Retry, JitteredScheduleIsSeededAndBounded) {
  svc::RetryPolicy policy;  // default jitter 0.5
  const std::vector<std::uint64_t> a = svc::materialize_schedule(policy, 7);
  const std::vector<std::uint64_t> b = svc::materialize_schedule(policy, 7);
  EXPECT_EQ(a, b) << "same seed must give the same schedule";
  EXPECT_NE(a, svc::materialize_schedule(policy, 8))
      << "different seeds should decorrelate synchronized retriers";

  std::uint64_t ladder = policy.base_backoff_slots;
  for (const std::uint64_t wait : a) {
    EXPECT_GE(wait, 1u);
    EXPECT_LE(wait, ladder) << "jitter only shaves, never inflates";
    ladder = std::min(ladder * 2, policy.max_backoff_slots);
  }
}

TEST(Retry, AllowsRetryHonorsMaxAttempts) {
  svc::RetryPolicy policy;
  policy.max_attempts = 3;
  svc::BackoffSchedule schedule(policy, 1);
  EXPECT_TRUE(schedule.allows_retry(1));
  EXPECT_TRUE(schedule.allows_retry(2));
  EXPECT_FALSE(schedule.allows_retry(3));
}

// --- registry --------------------------------------------------------------

TEST(Registry, LifecycleAndTypedShedOutcomes) {
  svc::RegistryConfig config;
  config.max_populations = 2;
  svc::PopulationRegistry registry(config);
  using Outcome = svc::PopulationRegistry::RegisterOutcome;

  EXPECT_EQ(registry.register_population(1, 500, 11), Outcome::kRegistered);
  EXPECT_EQ(registry.register_population(1, 500, 11),
            Outcome::kAlreadyExists);
  EXPECT_EQ(registry.register_population(2, 500, 12), Outcome::kRegistered);
  EXPECT_EQ(registry.register_population(3, 500, 13), Outcome::kFull);
  EXPECT_EQ(registry.register_population(4, config.max_tags_per_population + 1,
                                         14),
            Outcome::kInvalidRequest);
  EXPECT_EQ(registry.size(), 2u);

  const auto entry = registry.find(1);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->tags.size(), 500u);
  ASSERT_NE(entry->channel, nullptr);

  // In-flight holders keep an unregistered entry alive; new lookups fail.
  EXPECT_TRUE(registry.unregister_population(1));
  EXPECT_FALSE(registry.unregister_population(1));
  EXPECT_EQ(registry.find(1), nullptr);
  EXPECT_EQ(entry->tags.size(), 500u);
}

// --- estimation service ----------------------------------------------------

namespace service_helpers {

[[nodiscard]] svc::Frame register_frame(std::uint64_t id, std::uint64_t tags,
                                        std::uint64_t seed) {
  svc::RegisterRequest request;
  request.population_id = id;
  request.tag_count = tags;
  request.population_seed = seed;
  return svc::make_request(svc::CommandId::kRegister, svc::encode(request));
}

[[nodiscard]] svc::Frame estimate_frame(std::uint64_t id, std::uint64_t seed,
                                        std::uint64_t deadline_slots = 0,
                                        std::uint8_t robust = 1) {
  svc::EstimateRequest request;
  request.population_id = id;
  request.seed = seed;
  request.deadline_slots = deadline_slots;
  request.robust = robust;
  return svc::make_request(svc::CommandId::kEstimate, svc::encode(request));
}

[[nodiscard]] svc::StatusCode status_of(const svc::Frame& frame) {
  return static_cast<svc::StatusCode>(frame.status);
}

}  // namespace service_helpers

TEST(Service, HappyPathEstimateMeetsContractUndegraded) {
  using namespace service_helpers;
  constexpr std::uint64_t kTags = 2000;
  svc::EstimationService service;
  ASSERT_EQ(status_of(service.handle(register_frame(5, kTags, 99))),
            svc::StatusCode::kOk);

  const svc::Frame response = service.handle(estimate_frame(5, 0xE57));
  ASSERT_EQ(status_of(response), svc::StatusCode::kOk);
  const auto reply = svc::parse_estimate_reply(response.payload);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->population_id, 5u);
  EXPECT_EQ(reply->degraded, 0u);
  EXPECT_EQ(reply->truncated, 0u);
  EXPECT_EQ(reply->retries, 0u) << "link faults are inert by default";
  EXPECT_EQ(reply->rounds, reply->planned_rounds);
  EXPECT_GT(reply->query_slots, 0u);
  // PET's multiplicative error: n_hat within a generous band around n and
  // inside its own reported interval.
  EXPECT_GT(reply->n_hat, 0.5 * kTags);
  EXPECT_LT(reply->n_hat, 1.5 * kTags);
  EXPECT_LE(reply->ci_lo, reply->n_hat);
  EXPECT_GE(reply->ci_hi, reply->n_hat);

  const svc::Frame monitor =
      service.handle(svc::make_request(svc::CommandId::kMonitor));
  const auto stats = svc::parse_monitor_reply(monitor.payload);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->populations, 1u);
  EXPECT_EQ(stats->degraded, 0u);
}

TEST(Service, TypedErrorsForEveryRefusal) {
  using namespace service_helpers;
  svc::EstimationService service;

  // Unknown population.
  EXPECT_EQ(status_of(service.handle(estimate_frame(404, 1))),
            svc::StatusCode::kNotFound);

  // Invalid (ε, δ).
  svc::EstimateRequest bad;
  bad.population_id = 1;
  bad.epsilon = 1.5;
  EXPECT_EQ(status_of(service.handle(svc::make_request(
                svc::CommandId::kEstimate, svc::encode(bad)))),
            svc::StatusCode::kInvalidArgument);

  // Unknown command id.
  EXPECT_EQ(status_of(service.handle(test_frame(900, {}))),
            svc::StatusCode::kUnknownCommand);

  // Garbage payload.
  const svc::Frame malformed = service.handle(svc::make_request(
      svc::CommandId::kEstimate, {1, 2, 3}));
  EXPECT_EQ(status_of(malformed), svc::StatusCode::kMalformedFrame);
  EXPECT_FALSE(svc::error_detail(malformed).empty());

  // Duplicate registration.
  ASSERT_EQ(status_of(service.handle(register_frame(7, 100, 1))),
            svc::StatusCode::kOk);
  EXPECT_EQ(status_of(service.handle(register_frame(7, 100, 1))),
            svc::StatusCode::kAlreadyExists);

  // Unregister; estimate after it is NOT_FOUND.
  svc::UnregisterRequest unregister;
  unregister.population_id = 7;
  EXPECT_EQ(status_of(service.handle(svc::make_request(
                svc::CommandId::kUnregister, svc::encode(unregister)))),
            svc::StatusCode::kOk);
  EXPECT_EQ(status_of(service.handle(estimate_frame(7, 1))),
            svc::StatusCode::kNotFound);

  EXPECT_GE(service.stats().malformed_frames, 1u);
}

TEST(Service, DeadlineDegradesBeforeRefusing) {
  using namespace service_helpers;
  svc::EstimationService service;
  ASSERT_EQ(status_of(service.handle(register_frame(1, 3000, 17))),
            svc::StatusCode::kOk);

  // Baseline: unlimited budget, full plan.
  const svc::Frame full_response =
      service.handle(estimate_frame(1, 0xD15C));
  ASSERT_EQ(status_of(full_response), svc::StatusCode::kOk);
  const auto full = svc::parse_estimate_reply(full_response.payload);
  ASSERT_TRUE(full.has_value());
  ASSERT_EQ(full->degraded, 0u);
  const double full_width =
      (full->ci_hi - full->ci_lo) / (2.0 * full->n_hat);

  // Half the slots the full plan actually consumed: the service must trade
  // rounds for the deadline, flag the reply degraded, and widen the CI.
  const std::uint64_t tight = full->query_slots / 2;
  ASSERT_GT(tight, 0u);
  const svc::Frame tight_response =
      service.handle(estimate_frame(1, 0xD15C, tight));
  ASSERT_EQ(status_of(tight_response), svc::StatusCode::kOk);
  const auto degraded = svc::parse_estimate_reply(tight_response.payload);
  ASSERT_TRUE(degraded.has_value());
  EXPECT_EQ(degraded->degraded, 1u);
  EXPECT_LT(degraded->rounds, full->rounds);
  EXPECT_EQ(degraded->planned_rounds, full->planned_rounds);
  EXPECT_LT(degraded->query_slots, tight + 1);
  const double degraded_width =
      (degraded->ci_hi - degraded->ci_lo) / (2.0 * degraded->n_hat);
  EXPECT_GT(degraded_width, full_width)
      << "a degraded reply must widen its interval, not pretend";

  // A budget that cannot fit one round is refused with the typed status.
  const svc::Frame refused = service.handle(estimate_frame(1, 0xD15C, 3));
  EXPECT_EQ(status_of(refused), svc::StatusCode::kDeadlineExceeded);

  const svc::MonitorReply stats = service.stats();
  EXPECT_GE(stats.degraded, 1u);
  EXPECT_GE(stats.deadline_misses, 1u);
}

TEST(Service, RetryScheduleByteIdenticalAcrossThreads) {
  // The ISSUE.md determinism clause: identical seeded transient-fault
  // streams => byte-identical retry schedules and responses whether the
  // service runs 1, 2, or 8 workers.  Compare the *encoded frames*: any
  // drift in estimate, CI, retries, backoff, or flags shows up.
  using namespace service_helpers;
  constexpr std::uint64_t kRequests = 24;

  const auto run = [&](unsigned workers) {
    svc::ServiceConfig config;
    config.worker_threads = workers;
    config.link_faults.reply_loss_prob = 0.4;  // frequent transient faults
    svc::EstimationService service(config);
    const svc::Frame registered =
        service.handle(register_frame(9, 800, 0xFEED));
    EXPECT_EQ(status_of(registered), svc::StatusCode::kOk);

    std::vector<std::future<svc::Frame>> pending;
    pending.reserve(kRequests);
    for (std::uint64_t i = 0; i < kRequests; ++i) {
      pending.push_back(service.submit(
          estimate_frame(9, rng::derive_seed(0xE57, i), /*deadline=*/0,
                         /*robust=*/static_cast<std::uint8_t>(i % 2))));
    }
    std::vector<std::vector<std::uint8_t>> responses;
    responses.reserve(kRequests);
    for (std::future<svc::Frame>& future : pending) {
      responses.push_back(svc::encode_frame(future.get()));
    }
    return responses;
  };

  const std::vector<std::vector<std::uint8_t>> t1 = run(1);
  const std::vector<std::vector<std::uint8_t>> t2 = run(2);
  const std::vector<std::vector<std::uint8_t>> t8 = run(8);
  ASSERT_EQ(t1.size(), kRequests);
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    EXPECT_EQ(t1[i], t2[i]) << "request " << i << " drifted at 2 workers";
    EXPECT_EQ(t1[i], t8[i]) << "request " << i << " drifted at 8 workers";
  }

  // The fault stream actually exercised the retry machinery: with loss 0.4
  // some requests retried and some did not.
  bool some_retried = false, some_clean = false;
  for (const std::vector<std::uint8_t>& bytes : t1) {
    svc::Decoder decoder;
    decoder.feed(bytes);
    svc::Frame frame;
    ASSERT_EQ(decoder.next(frame), svc::DecodeStatus::kFrame);
    if (static_cast<svc::StatusCode>(frame.status) != svc::StatusCode::kOk) {
      continue;  // retry budget exhausted: typed UNAVAILABLE, also replayed
    }
    const auto reply = svc::parse_estimate_reply(frame.payload);
    ASSERT_TRUE(reply.has_value());
    (reply->retries > 0 ? some_retried : some_clean) = true;
    if (reply->retries > 0) EXPECT_GT(reply->backoff_slots, 0u);
  }
  EXPECT_TRUE(some_retried);
  EXPECT_TRUE(some_clean);
}

TEST(Service, OverloadShedsWithTypedFramesControlPlaneSurvives) {
  using namespace service_helpers;
  svc::ServiceConfig config;
  config.max_inflight = 4;
  config.worker_threads = 2;
  svc::EstimationService service(config);
  ASSERT_EQ(status_of(service.handle(register_frame(1, 200, 3))),
            svc::StatusCode::kOk);

  {
    // Occupy every admission slot; the next estimate must shed immediately
    // with RESOURCE_EXHAUSTED while ping (control plane) still answers.
    svc::EstimationService::InflightHold hold(service, config.max_inflight);
    const svc::Frame shed = service.submit(estimate_frame(1, 1)).get();
    EXPECT_EQ(status_of(shed), svc::StatusCode::kResourceExhausted);
    EXPECT_TRUE(svc::is_retryable(status_of(shed)));

    const svc::Frame pong =
        service.submit(svc::make_request(svc::CommandId::kPing)).get();
    EXPECT_EQ(status_of(pong), svc::StatusCode::kOk);
  }

  // Capacity released: the same request is served.
  EXPECT_EQ(status_of(service.submit(estimate_frame(1, 1)).get()),
            svc::StatusCode::kOk);
  EXPECT_GE(service.stats().shed, 1u);
}

TEST(Service, ShutdownRefusesNewWorkWithTypedStatus) {
  using namespace service_helpers;
  svc::EstimationService service;
  ASSERT_EQ(status_of(service.handle(register_frame(1, 200, 3))),
            svc::StatusCode::kOk);
  service.begin_shutdown();
  EXPECT_TRUE(service.draining());
  const svc::Frame refused = service.submit(estimate_frame(1, 1)).get();
  EXPECT_EQ(status_of(refused), svc::StatusCode::kShuttingDown);
  EXPECT_TRUE(svc::is_retryable(status_of(refused)));
}

// --- chaos link ------------------------------------------------------------

TEST(Chaos, SeededLinkReplaysBitForBit) {
  sim::ChannelImpairments impairments;
  impairments.reply_loss_prob = 0.2;
  impairments.false_busy_prob = 0.2;
  impairments.seed = 0xC405;

  const auto run = [&] {
    svc::ChaosLink link(impairments);
    std::vector<svc::ChaosLink::Action> actions;
    std::vector<std::vector<std::uint8_t>> outputs;
    for (std::uint16_t i = 0; i < 200; ++i) {
      std::vector<std::uint8_t> bytes = svc::encode_frame(
          test_frame(i, {static_cast<std::uint8_t>(i), 0x55}));
      actions.push_back(link.apply(bytes));
      outputs.push_back(std::move(bytes));
    }
    return std::make_pair(std::move(actions), std::move(outputs));
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);

  // The mix actually exercised more than one action.
  const auto count = [&](svc::ChaosLink::Action action) {
    return std::count(first.first.begin(), first.first.end(), action);
  };
  EXPECT_GT(count(svc::ChaosLink::Action::kDeliver), 0);
  EXPECT_GT(count(svc::ChaosLink::Action::kDropFrame) +
                count(svc::ChaosLink::Action::kCorruptBit),
            0);
}

TEST(Chaos, CorruptedFramesAreCaughtByTheCodec) {
  sim::ChannelImpairments impairments;
  impairments.false_busy_prob = 1.0;  // every frame gets a bit flip
  svc::ChaosLink link(impairments);

  const svc::Frame original = test_frame(4, {1, 2, 3, 4, 5, 6, 7, 8});
  const std::vector<std::uint8_t> clean = svc::encode_frame(original);
  for (int i = 0; i < 50; ++i) {
    std::vector<std::uint8_t> bytes = clean;
    const svc::ChaosLink::Action action = link.apply(bytes);
    ASSERT_EQ(action, svc::ChaosLink::Action::kCorruptBit);
    ASSERT_NE(bytes, clean);

    svc::Decoder decoder;
    decoder.feed(bytes);
    const DrainResult result = drain(decoder);
    // Detected (typed error) or skipped; never a silently different frame.
    for (const svc::Frame& decoded : result.frames) {
      EXPECT_TRUE(frames_equal(original, decoded));
    }
    EXPECT_TRUE(result.frames.empty());
    EXPECT_GE(result.errors.size(), 1u);
  }
  EXPECT_EQ(link.corrupted(), 50u);
}

// --- cooperative cancellation / truncated artifacts ------------------------

TEST(Cancellation, SerialRunnerStopsExactlyAtTheCancelPoint) {
  // The serial path is deterministic: cancel during trial 64 means trials
  // 0..64 fold and 65 is never started.
  runtime::TrialRunner runner(1);
  const runtime::CancelToken token = runtime::CancelToken::cancellable();
  runner.set_cancel_token(token);
  std::uint64_t folded = 0;
  const std::uint64_t total = runner.run<std::uint64_t>(
      10000,
      [&](std::uint64_t i) {
        if (i == 64) token.cancel();
        return i;
      },
      [&](std::uint64_t, std::uint64_t&&) { ++folded; });
  EXPECT_EQ(total, 65u);
  EXPECT_EQ(folded, 65u);
}

TEST(Cancellation, ParallelRunnerDrainsToAContiguousPrefix) {
  // Parallel scheduling (work stealing) makes the cut point nondeterministic
  // — the contract is only that the fold sees a contiguous prefix and the
  // sweep actually stops early.
  runtime::TrialRunner runner(4);
  const runtime::CancelToken token = runtime::CancelToken::cancellable();
  runner.set_cancel_token(token);

  std::atomic<std::uint64_t> folded{0};
  const std::uint64_t total = runner.run<std::uint64_t>(
      10000,
      [&](std::uint64_t i) {
        if (i == 64) token.cancel();
        return i;
      },
      [&](std::uint64_t i, std::uint64_t&& value) {
        EXPECT_EQ(value, i) << "fold must replay the serial order";
        folded.fetch_add(1);
      });
  EXPECT_LT(total, 10000u) << "cancel() fired mid-sweep; a full run means "
                              "the token was ignored";
  EXPECT_EQ(total, folded.load());
}

TEST(Cancellation, TruncatedBenchArtifactIsMarked) {
  runtime::BenchReport report("cancel_test", 1);
  report.add_row("t", {"a"}, {"1"});
  EXPECT_EQ(report.to_json().find("\"truncated\""), std::string::npos)
      << "untruncated artifacts must keep the historical schema";
  report.set_truncated(true);
  EXPECT_NE(report.to_json().find("\"truncated\": true"), std::string::npos);
}

}  // namespace
