// pet::svc — framing, retry, registry, and the fault-tolerant estimation
// service behind petd (docs/service.md).
//
// The load-bearing suites:
//   * FrameCodec.*: the decoder is *total* — truncated, corrupted,
//     oversized, or adversarial bytes produce typed errors, never UB
//     (the fuzz cases are the ASan/UBSan payload of the service label);
//   * Retry.* / Service.RetryScheduleByteIdenticalAcrossThreads: identical
//     seeded transient-fault streams yield byte-identical retry schedules
//     and responses at worker_threads 1, 2, and 8;
//   * Service.DeadlineDegradesBeforeRefusing: graceful degradation — a
//     tight deadline buys fewer rounds, an explicit degraded flag, and a
//     widened CI; an impossible one gets DEADLINE_EXCEEDED, not a lie.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "obs/jsonlite.hpp"
#include "obs/metrics.hpp"
#include "rng/prng.hpp"
#include "runtime/cancel.hpp"
#include "runtime/json.hpp"
#include "runtime/trial_runner.hpp"
#include "service/cache.hpp"
#include "service/chaos.hpp"
#include "service/errors.hpp"
#include "service/flight.hpp"
#include "service/shard.hpp"
#include "service/frame.hpp"
#include "service/messages.hpp"
#include "service/registry.hpp"
#include "service/retry.hpp"
#include "service/service.hpp"
#include "sim/faults.hpp"

namespace {

using namespace pet;

[[nodiscard]] svc::Frame test_frame(std::uint16_t command,
                                    std::vector<std::uint8_t> payload) {
  svc::Frame frame;
  frame.command = command;
  frame.payload = std::move(payload);
  return frame;
}

[[nodiscard]] bool frames_equal(const svc::Frame& a, const svc::Frame& b) {
  return a.ver_major == b.ver_major && a.ver_minor == b.ver_minor &&
         a.command == b.command && a.status == b.status &&
         a.payload == b.payload;
}

/// Drain every decodable frame/error out of a decoder.
struct DrainResult {
  std::vector<svc::Frame> frames;
  std::vector<svc::DecodeStatus> errors;
};

[[nodiscard]] DrainResult drain(svc::Decoder& decoder) {
  DrainResult result;
  svc::Frame frame;
  for (;;) {
    const svc::DecodeStatus status = decoder.next(frame);
    if (status == svc::DecodeStatus::kNeedMoreData) break;
    if (status == svc::DecodeStatus::kFrame) {
      result.frames.push_back(frame);
    } else {
      result.errors.push_back(status);
    }
  }
  return result;
}

// --- frame codec -----------------------------------------------------------

TEST(FrameCodec, EncodeDecodeIdentity) {
  for (const std::size_t size : {std::size_t{0}, std::size_t{1},
                                 std::size_t{7}, std::size_t{1024}}) {
    std::vector<std::uint8_t> payload(size);
    for (std::size_t i = 0; i < size; ++i) {
      payload[i] = static_cast<std::uint8_t>(i * 13 + 5);
    }
    svc::Frame original = test_frame(4, payload);
    original.status = 7;

    svc::Decoder decoder;
    decoder.feed(svc::encode_frame(original));
    svc::Frame decoded;
    ASSERT_EQ(decoder.next(decoded), svc::DecodeStatus::kFrame);
    EXPECT_TRUE(frames_equal(original, decoded));
    EXPECT_EQ(decoder.pending(), 0u);
    EXPECT_EQ(decoder.next(decoded), svc::DecodeStatus::kNeedMoreData);
  }
}

TEST(FrameCodec, ByteAtATimeFeedingNeedsDataUntilComplete) {
  const svc::Frame original = test_frame(2, {1, 2, 3, 4});
  const std::vector<std::uint8_t> bytes = svc::encode_frame(original);
  svc::Decoder decoder;
  svc::Frame decoded;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    decoder.feed(&bytes[i], 1);
    ASSERT_EQ(decoder.next(decoded), svc::DecodeStatus::kNeedMoreData)
        << "frame completed " << (bytes.size() - 1 - i) << " bytes early";
  }
  decoder.feed(&bytes.back(), 1);
  ASSERT_EQ(decoder.next(decoded), svc::DecodeStatus::kFrame);
  EXPECT_TRUE(frames_equal(original, decoded));
}

TEST(FrameCodec, GarbagePrefixCostsOneTypedErrorThenResyncs) {
  // A run of non-SOF garbage is reported once (kBadSof), not per byte.
  std::vector<std::uint8_t> bytes = {0x00, 0x13, 0x37, 0x42, 0x00};
  const svc::Frame original = test_frame(1, {9});
  const std::vector<std::uint8_t> encoded = svc::encode_frame(original);
  bytes.insert(bytes.end(), encoded.begin(), encoded.end());

  svc::Decoder decoder;
  decoder.feed(bytes);
  const DrainResult result = drain(decoder);
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_EQ(result.errors[0], svc::DecodeStatus::kBadSof);
  ASSERT_EQ(result.frames.size(), 1u);
  EXPECT_TRUE(frames_equal(original, result.frames[0]));
}

TEST(FrameCodec, CorruptHeaderLoseOnlyThatFrame) {
  const svc::Frame first = test_frame(3, {1, 1, 2, 3, 5, 8});
  const svc::Frame second = test_frame(4, {42});
  std::vector<std::uint8_t> bytes = svc::encode_frame(first);
  bytes[3] ^= 0x10;  // command byte: header LRC must catch it
  const std::vector<std::uint8_t> tail = svc::encode_frame(second);
  bytes.insert(bytes.end(), tail.begin(), tail.end());

  svc::Decoder decoder;
  decoder.feed(bytes);
  const DrainResult result = drain(decoder);
  ASSERT_GE(result.errors.size(), 1u);
  EXPECT_EQ(result.errors[0], svc::DecodeStatus::kBadHeaderLrc);
  for (const svc::DecodeStatus status : result.errors) {
    EXPECT_TRUE(svc::is_decode_error(status));
  }
  ASSERT_EQ(result.frames.size(), 1u);
  EXPECT_TRUE(frames_equal(second, result.frames[0]));
}

TEST(FrameCodec, CorruptPayloadDropsFrameKeepsStream) {
  const svc::Frame first = test_frame(4, {10, 20, 30, 40});
  const svc::Frame second = test_frame(5, {});
  std::vector<std::uint8_t> bytes = svc::encode_frame(first);
  bytes[svc::kHeaderSize + 1] ^= 0x01;  // payload bit: payload LRC catches it
  const std::vector<std::uint8_t> tail = svc::encode_frame(second);
  bytes.insert(bytes.end(), tail.begin(), tail.end());

  svc::Decoder decoder;
  decoder.feed(bytes);
  const DrainResult result = drain(decoder);
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_EQ(result.errors[0], svc::DecodeStatus::kBadPayloadLrc);
  ASSERT_EQ(result.frames.size(), 1u);
  EXPECT_TRUE(frames_equal(second, result.frames[0]));
}

TEST(FrameCodec, OversizedLengthFieldRejectedNotBuffered) {
  // Hand-build a header whose length field demands kMaxPayload + 1 bytes
  // with a *valid* header LRC: the only defense is the explicit size cap.
  std::vector<std::uint8_t> bytes(svc::kHeaderSize);
  bytes[0] = svc::kSof;
  bytes[1] = svc::kProtocolMajor;
  bytes[2] = svc::kProtocolMinor;
  bytes[3] = 1;  // command lo
  const std::uint32_t huge = svc::kMaxPayload + 1;
  bytes[7] = static_cast<std::uint8_t>(huge & 0xFF);
  bytes[8] = static_cast<std::uint8_t>((huge >> 8) & 0xFF);
  bytes[9] = static_cast<std::uint8_t>((huge >> 16) & 0xFF);
  bytes[10] = static_cast<std::uint8_t>((huge >> 24) & 0xFF);
  bytes[11] = svc::lrc(bytes.data(), svc::kHeaderSize - 1);

  svc::Decoder decoder;
  decoder.feed(bytes);
  svc::Frame frame;
  EXPECT_EQ(decoder.next(frame), svc::DecodeStatus::kOversized);
  // The decoder must not be waiting to buffer a gigabyte.
  EXPECT_LT(decoder.pending(), bytes.size());
}

TEST(FrameCodec, VersionSkewIsAServiceDecisionNotADecodeError) {
  // Framing is version-agnostic (resync must work on frames from any
  // speaker); semver policy lives in EstimationService::handle.
  svc::Frame skewed = test_frame(1, {});
  skewed.ver_major = svc::kProtocolMajor + 1;
  svc::Decoder decoder;
  decoder.feed(svc::encode_frame(skewed));
  svc::Frame decoded;
  ASSERT_EQ(decoder.next(decoded), svc::DecodeStatus::kFrame);

  svc::EstimationService service;
  const svc::Frame rejected = service.handle(decoded);
  EXPECT_EQ(static_cast<svc::StatusCode>(rejected.status),
            svc::StatusCode::kIncompatibleVersion);
  EXPECT_FALSE(svc::error_detail(rejected).empty());

  // A higher *minor* version is forward-compatible and must be served.
  svc::Frame minor_skew = test_frame(1, {});
  minor_skew.ver_minor = svc::kProtocolMinor + 3;
  const svc::Frame served = service.handle(minor_skew);
  EXPECT_EQ(static_cast<svc::StatusCode>(served.status),
            svc::StatusCode::kOk);
}

TEST(FrameCodec, FuzzRandomBytesNeverCrashOrBufferUnbounded) {
  // Pure adversarial input: the decoder must only ever emit typed statuses,
  // keep bounded memory, and make progress.  ASan/UBSan in the sanitizer CI
  // job turn any lurking UB into a test failure.
  rng::Xoshiro256ss rng(0xF0220u);
  svc::Decoder decoder;
  svc::Frame frame;
  std::size_t total_outcomes = 0;
  for (int chunk = 0; chunk < 200; ++chunk) {
    std::vector<std::uint8_t> bytes(1 + (rng() % 257));
    for (std::uint8_t& b : bytes) b = static_cast<std::uint8_t>(rng());
    decoder.feed(bytes);
    for (;;) {
      const svc::DecodeStatus status = decoder.next(frame);
      ++total_outcomes;
      ASSERT_LT(total_outcomes, 1u << 20) << "decoder livelocked";
      if (status == svc::DecodeStatus::kNeedMoreData) break;
      if (status == svc::DecodeStatus::kFrame) {
        EXPECT_LE(frame.payload.size(), svc::kMaxPayload);
      } else {
        EXPECT_TRUE(svc::is_decode_error(status));
      }
    }
    EXPECT_LE(decoder.pending(),
              std::size_t{svc::kMaxPayload} + svc::kHeaderSize + 1);
  }
}

TEST(FrameCodec, FuzzSingleBitFlipNeverYieldsACorruptedFrame) {
  // An LRC never absorbs a single bit flip (the sum changes by ±2^k mod
  // 256 != 0), so any frame the decoder does emit from a flipped stream
  // must be byte-exact one of the originals — corruption is detected or
  // skipped, never silently delivered.
  rng::Xoshiro256ss rng(0xB17F11Fu);
  for (int round = 0; round < 64; ++round) {
    std::vector<svc::Frame> originals;
    std::vector<std::uint8_t> stream;
    for (std::uint16_t i = 0; i < 8; ++i) {
      svc::Frame frame = test_frame(
          static_cast<std::uint16_t>(i + 1),
          {static_cast<std::uint8_t>(round), static_cast<std::uint8_t>(i)});
      const std::vector<std::uint8_t> encoded = svc::encode_frame(frame);
      stream.insert(stream.end(), encoded.begin(), encoded.end());
      originals.push_back(std::move(frame));
    }
    stream[rng() % stream.size()] ^=
        static_cast<std::uint8_t>(1u << (rng() % 8));

    svc::Decoder decoder;
    decoder.feed(stream);
    const DrainResult result = drain(decoder);
    EXPECT_LT(result.frames.size(), originals.size());
    for (const svc::Frame& decoded : result.frames) {
      const bool matches_an_original =
          std::any_of(originals.begin(), originals.end(),
                      [&](const svc::Frame& original) {
                        return frames_equal(original, decoded);
                      });
      EXPECT_TRUE(matches_an_original)
          << "decoder delivered a frame that was never sent";
    }
  }
}

// --- message schemas -------------------------------------------------------

TEST(Messages, RoundTripEveryMessage) {
  svc::EstimateRequest estimate;
  estimate.population_id = 77;
  estimate.seed = 0xAB12;
  estimate.epsilon = 0.07;
  estimate.delta = 0.01;
  estimate.deadline_slots = 1234;
  estimate.robust = 0;
  const auto estimate_rt = svc::parse_estimate_request(svc::encode(estimate));
  ASSERT_TRUE(estimate_rt.has_value());
  EXPECT_EQ(estimate_rt->population_id, estimate.population_id);
  EXPECT_EQ(estimate_rt->seed, estimate.seed);
  EXPECT_DOUBLE_EQ(estimate_rt->epsilon, estimate.epsilon);
  EXPECT_DOUBLE_EQ(estimate_rt->delta, estimate.delta);
  EXPECT_EQ(estimate_rt->deadline_slots, estimate.deadline_slots);
  EXPECT_EQ(estimate_rt->robust, estimate.robust);

  svc::EstimateReply reply;
  reply.population_id = 77;
  reply.n_hat = 4987.25;
  reply.ci_lo = 4200.0;
  reply.ci_hi = 5800.0;
  reply.rounds = 31;
  reply.planned_rounds = 40;
  reply.query_slots = 992;
  reply.retries = 2;
  reply.backoff_slots = 24;
  reply.degraded = 1;
  reply.truncated = 1;
  reply.health = 2;
  const auto reply_rt = svc::parse_estimate_reply(svc::encode(reply));
  ASSERT_TRUE(reply_rt.has_value());
  EXPECT_DOUBLE_EQ(reply_rt->n_hat, reply.n_hat);
  EXPECT_DOUBLE_EQ(reply_rt->ci_lo, reply.ci_lo);
  EXPECT_DOUBLE_EQ(reply_rt->ci_hi, reply.ci_hi);
  EXPECT_EQ(reply_rt->rounds, reply.rounds);
  EXPECT_EQ(reply_rt->planned_rounds, reply.planned_rounds);
  EXPECT_EQ(reply_rt->query_slots, reply.query_slots);
  EXPECT_EQ(reply_rt->retries, reply.retries);
  EXPECT_EQ(reply_rt->backoff_slots, reply.backoff_slots);
  EXPECT_EQ(reply_rt->degraded, reply.degraded);
  EXPECT_EQ(reply_rt->truncated, reply.truncated);
  EXPECT_EQ(reply_rt->health, reply.health);

  svc::MonitorReply monitor;
  monitor.populations = 1;
  monitor.accepted = 9;
  monitor.shed = 3;
  monitor.malformed_frames = 2;
  const auto monitor_rt = svc::parse_monitor_reply(svc::encode(monitor));
  ASSERT_TRUE(monitor_rt.has_value());
  EXPECT_EQ(monitor_rt->populations, monitor.populations);
  EXPECT_EQ(monitor_rt->accepted, monitor.accepted);
  EXPECT_EQ(monitor_rt->shed, monitor.shed);
  EXPECT_EQ(monitor_rt->malformed_frames, monitor.malformed_frames);
}

TEST(Messages, ShortAndOverlongPayloadsAreMalformed) {
  svc::EstimateRequest request;
  std::vector<std::uint8_t> bytes = svc::encode(request);

  std::vector<std::uint8_t> shortened(bytes.begin(), bytes.end() - 1);
  EXPECT_FALSE(svc::parse_estimate_request(shortened).has_value());

  std::vector<std::uint8_t> overlong = bytes;
  overlong.push_back(0xEE);  // trailing garbage is malformed, not ignored
  EXPECT_FALSE(svc::parse_estimate_request(overlong).has_value());

  EXPECT_FALSE(svc::parse_estimate_request({}).has_value());
  EXPECT_TRUE(svc::parse_estimate_request(bytes).has_value());
}

TEST(Messages, ErrorFramesCarryDetailStrings) {
  const svc::Frame error = svc::make_error(
      svc::CommandId::kEstimate,
      static_cast<std::uint16_t>(svc::StatusCode::kDeadlineExceeded),
      "budget too small");
  EXPECT_EQ(static_cast<svc::StatusCode>(error.status),
            svc::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(svc::error_detail(error), "budget too small");
  EXPECT_TRUE(svc::is_retryable(svc::StatusCode::kResourceExhausted));
  EXPECT_TRUE(svc::is_retryable(svc::StatusCode::kUnavailable));
  EXPECT_FALSE(svc::is_retryable(svc::StatusCode::kInvalidArgument));
}

TEST(Messages, RoundTripObservabilityMessages) {
  svc::MetricsRequest metrics;
  metrics.scope = static_cast<std::uint8_t>(svc::MetricsScope::kPopulation);
  metrics.population_id = 42;
  const auto metrics_rt = svc::parse_metrics_request(svc::encode(metrics));
  ASSERT_TRUE(metrics_rt.has_value());
  EXPECT_EQ(metrics_rt->scope, metrics.scope);
  EXPECT_EQ(metrics_rt->population_id, metrics.population_id);

  // Empty payload = defaults (scope kFull, all populations): the bare
  // `petctl top` request frame.
  const auto default_rt = svc::parse_metrics_request({});
  ASSERT_TRUE(default_rt.has_value());
  EXPECT_EQ(default_rt->scope,
            static_cast<std::uint8_t>(svc::MetricsScope::kFull));

  svc::FlightDumpRequest dump;
  dump.request_id = 0xDEAD;
  dump.max_records = 7;
  const auto dump_rt = svc::parse_flight_dump_request(svc::encode(dump));
  ASSERT_TRUE(dump_rt.has_value());
  EXPECT_EQ(dump_rt->request_id, dump.request_id);
  EXPECT_EQ(dump_rt->max_records, dump.max_records);
  EXPECT_TRUE(svc::parse_flight_dump_request({}).has_value());

  svc::FlightDumpReply reply;
  svc::RequestRecord record;
  record.request_id = 0x1234;
  record.population_id = 9;
  record.command = static_cast<std::uint16_t>(svc::CommandId::kEstimate);
  record.status = static_cast<std::uint16_t>(svc::StatusCode::kOk);
  record.degrade_mask = svc::kDegradeTruncated | svc::kDegradeFitShort;
  record.planned_rounds = 40;
  record.rounds = 31;
  record.retries = 2;
  record.backoff_slots = 24;
  record.query_slots = 992;
  record.latency_slots = 1016;
  record.queue_us = 120;
  record.handle_us = 800;
  record.shard = 5;      // v1.2 stamps: shard id + cache-hit bit
  record.cache_hit = 1;
  reply.records.push_back(record);
  const auto reply_rt = svc::parse_flight_dump_reply(svc::encode(reply));
  ASSERT_TRUE(reply_rt.has_value());
  ASSERT_EQ(reply_rt->records.size(), 1u);
  EXPECT_EQ(reply_rt->records[0].request_id, record.request_id);
  EXPECT_EQ(reply_rt->records[0].degrade_mask, record.degrade_mask);
  EXPECT_EQ(reply_rt->records[0].latency_slots, record.latency_slots);
  EXPECT_EQ(reply_rt->records[0].queue_us, record.queue_us);
  EXPECT_EQ(reply_rt->records[0].handle_us, record.handle_us);
  EXPECT_EQ(reply_rt->records[0].shard, record.shard);
  EXPECT_EQ(reply_rt->records[0].cache_hit, record.cache_hit);

  // Truncated record arrays are malformed, not partially parsed.
  std::vector<std::uint8_t> truncated = svc::encode(reply);
  truncated.pop_back();
  EXPECT_FALSE(svc::parse_flight_dump_reply(truncated).has_value());
}

TEST(Messages, MonitorReplyWireLayoutFrozenForOldClients) {
  // Semver story: minor 1 added commands only; minor 2 widened flight-dump
  // records (shard id + flags) — every v1.0 payload layout is still frozen.
  // This inline parser IS the v1.0 client; if MonitorReply ever grows a
  // field, this test fails before any deployed client does.
  EXPECT_EQ(svc::kProtocolMinor, 2);
  svc::MonitorReply monitor;
  monitor.populations = 3;
  monitor.inflight = 1;
  monitor.accepted = 100;
  monitor.completed = 90;
  monitor.shed = 4;
  monitor.degraded = 7;
  monitor.deadline_misses = 2;
  monitor.retries = 11;
  monitor.malformed_frames = 5;
  const std::vector<std::uint8_t> bytes = svc::encode(monitor);
  ASSERT_EQ(bytes.size(), 72u) << "MonitorReply is frozen at 9 x u64";
  const auto read_u64 = [&](std::size_t index) {
    std::uint64_t value = 0;
    for (std::size_t b = 0; b < 8; ++b) {
      value |= static_cast<std::uint64_t>(bytes[index * 8 + b]) << (8 * b);
    }
    return value;
  };
  EXPECT_EQ(read_u64(0), monitor.populations);
  EXPECT_EQ(read_u64(1), monitor.inflight);
  EXPECT_EQ(read_u64(2), monitor.accepted);
  EXPECT_EQ(read_u64(3), monitor.completed);
  EXPECT_EQ(read_u64(4), monitor.shed);
  EXPECT_EQ(read_u64(5), monitor.degraded);
  EXPECT_EQ(read_u64(6), monitor.deadline_misses);
  EXPECT_EQ(read_u64(7), monitor.retries);
  EXPECT_EQ(read_u64(8), monitor.malformed_frames);
}

// --- flight recorder -------------------------------------------------------

TEST(Flight, RequestIdIsDeterministicContentAddressedAndNonZero) {
  const svc::Frame a = test_frame(3, {1, 2, 3});
  const svc::Frame b = test_frame(3, {1, 2, 3});
  const svc::Frame c = test_frame(3, {1, 2, 4});
  EXPECT_EQ(svc::derive_request_id(a), svc::derive_request_id(b));
  EXPECT_NE(svc::derive_request_id(a), svc::derive_request_id(c));
  EXPECT_NE(svc::derive_request_id(a), 0u) << "0 is the wildcard filter";
  const std::string rendered = svc::format_request_id(0xABCDull);
  EXPECT_EQ(rendered, "0x000000000000abcd");
}

TEST(Flight, DegradeMaskRendersBitNames) {
  EXPECT_EQ(svc::degrade_mask_to_string(0), "-");
  EXPECT_EQ(svc::degrade_mask_to_string(svc::kDegradeTruncated |
                                        svc::kDegradeFitShort),
            "truncated|fit-short");
  EXPECT_EQ(svc::degrade_mask_to_string(svc::kDegradeShed), "shed");
}

TEST(Flight, RingWrapsKeepingNewestAndCountsLifetime) {
  svc::FlightRecorder recorder(4);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    svc::RequestRecord record;
    record.request_id = i;
    recorder.record(record);
  }
  EXPECT_EQ(recorder.capacity(), 4u);
  EXPECT_EQ(recorder.recorded(), 10u) << "lifetime count, not occupancy";
  const std::vector<svc::RequestRecord> all = recorder.dump(0, 0);
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all.front().request_id, 7u);
  EXPECT_EQ(all.back().request_id, 10u);

  // max_records keeps the NEWEST n; the id filter selects exactly.
  const std::vector<svc::RequestRecord> newest = recorder.dump(0, 2);
  ASSERT_EQ(newest.size(), 2u);
  EXPECT_EQ(newest.front().request_id, 9u);
  const std::vector<svc::RequestRecord> one = recorder.dump(8, 0);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one.front().request_id, 8u);
  EXPECT_TRUE(recorder.dump(99, 0).empty());
}

// --- retry policy ----------------------------------------------------------

TEST(Retry, ZeroJitterLadderIsTheCappedExponential) {
  svc::RetryPolicy policy;
  policy.max_attempts = 8;
  policy.base_backoff_slots = 8;
  policy.max_backoff_slots = 256;
  policy.jitter = 0.0;
  const std::vector<std::uint64_t> schedule =
      svc::materialize_schedule(policy, 42);
  const std::vector<std::uint64_t> expected = {8, 16, 32, 64, 128, 256, 256};
  EXPECT_EQ(schedule, expected);
}

TEST(Retry, JitteredScheduleIsSeededAndBounded) {
  svc::RetryPolicy policy;  // default jitter 0.5
  const std::vector<std::uint64_t> a = svc::materialize_schedule(policy, 7);
  const std::vector<std::uint64_t> b = svc::materialize_schedule(policy, 7);
  EXPECT_EQ(a, b) << "same seed must give the same schedule";
  EXPECT_NE(a, svc::materialize_schedule(policy, 8))
      << "different seeds should decorrelate synchronized retriers";

  std::uint64_t ladder = policy.base_backoff_slots;
  for (const std::uint64_t wait : a) {
    EXPECT_GE(wait, 1u);
    EXPECT_LE(wait, ladder) << "jitter only shaves, never inflates";
    ladder = std::min(ladder * 2, policy.max_backoff_slots);
  }
}

TEST(Retry, AllowsRetryHonorsMaxAttempts) {
  svc::RetryPolicy policy;
  policy.max_attempts = 3;
  svc::BackoffSchedule schedule(policy, 1);
  EXPECT_TRUE(schedule.allows_retry(1));
  EXPECT_TRUE(schedule.allows_retry(2));
  EXPECT_FALSE(schedule.allows_retry(3));
}

// --- registry --------------------------------------------------------------

TEST(Registry, LifecycleAndTypedShedOutcomes) {
  svc::RegistryConfig config;
  config.max_populations = 2;
  svc::PopulationRegistry registry(config);
  using Outcome = svc::PopulationRegistry::RegisterOutcome;

  EXPECT_EQ(registry.register_population(1, 500, 11), Outcome::kRegistered);
  EXPECT_EQ(registry.register_population(1, 500, 11),
            Outcome::kAlreadyExists);
  EXPECT_EQ(registry.register_population(2, 500, 12), Outcome::kRegistered);
  EXPECT_EQ(registry.register_population(3, 500, 13), Outcome::kFull);
  EXPECT_EQ(registry.register_population(4, config.max_tags_per_population + 1,
                                         14),
            Outcome::kInvalidRequest);
  EXPECT_EQ(registry.size(), 2u);

  const auto entry = registry.find(1);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->tags.size(), 500u);
  ASSERT_NE(entry->channel, nullptr);

  // In-flight holders keep an unregistered entry alive; new lookups fail.
  EXPECT_TRUE(registry.unregister_population(1));
  EXPECT_FALSE(registry.unregister_population(1));
  EXPECT_EQ(registry.find(1), nullptr);
  EXPECT_EQ(entry->tags.size(), 500u);
}

// --- estimation service ----------------------------------------------------

namespace service_helpers {

[[nodiscard]] svc::Frame register_frame(std::uint64_t id, std::uint64_t tags,
                                        std::uint64_t seed) {
  svc::RegisterRequest request;
  request.population_id = id;
  request.tag_count = tags;
  request.population_seed = seed;
  return svc::make_request(svc::CommandId::kRegister, svc::encode(request));
}

[[nodiscard]] svc::Frame estimate_frame(std::uint64_t id, std::uint64_t seed,
                                        std::uint64_t deadline_slots = 0,
                                        std::uint8_t robust = 1) {
  svc::EstimateRequest request;
  request.population_id = id;
  request.seed = seed;
  request.deadline_slots = deadline_slots;
  request.robust = robust;
  return svc::make_request(svc::CommandId::kEstimate, svc::encode(request));
}

[[nodiscard]] svc::StatusCode status_of(const svc::Frame& frame) {
  return static_cast<svc::StatusCode>(frame.status);
}

}  // namespace service_helpers

TEST(Service, HappyPathEstimateMeetsContractUndegraded) {
  using namespace service_helpers;
  constexpr std::uint64_t kTags = 2000;
  svc::EstimationService service;
  ASSERT_EQ(status_of(service.handle(register_frame(5, kTags, 99))),
            svc::StatusCode::kOk);

  const svc::Frame response = service.handle(estimate_frame(5, 0xE57));
  ASSERT_EQ(status_of(response), svc::StatusCode::kOk);
  const auto reply = svc::parse_estimate_reply(response.payload);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->population_id, 5u);
  EXPECT_EQ(reply->degraded, 0u);
  EXPECT_EQ(reply->truncated, 0u);
  EXPECT_EQ(reply->retries, 0u) << "link faults are inert by default";
  EXPECT_EQ(reply->rounds, reply->planned_rounds);
  EXPECT_GT(reply->query_slots, 0u);
  // PET's multiplicative error: n_hat within a generous band around n and
  // inside its own reported interval.
  EXPECT_GT(reply->n_hat, 0.5 * kTags);
  EXPECT_LT(reply->n_hat, 1.5 * kTags);
  EXPECT_LE(reply->ci_lo, reply->n_hat);
  EXPECT_GE(reply->ci_hi, reply->n_hat);

  const svc::Frame monitor =
      service.handle(svc::make_request(svc::CommandId::kMonitor));
  const auto stats = svc::parse_monitor_reply(monitor.payload);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->populations, 1u);
  EXPECT_EQ(stats->degraded, 0u);
}

TEST(Service, TypedErrorsForEveryRefusal) {
  using namespace service_helpers;
  svc::EstimationService service;

  // Unknown population.
  EXPECT_EQ(status_of(service.handle(estimate_frame(404, 1))),
            svc::StatusCode::kNotFound);

  // Invalid (ε, δ).
  svc::EstimateRequest bad;
  bad.population_id = 1;
  bad.epsilon = 1.5;
  EXPECT_EQ(status_of(service.handle(svc::make_request(
                svc::CommandId::kEstimate, svc::encode(bad)))),
            svc::StatusCode::kInvalidArgument);

  // Unknown command id.
  EXPECT_EQ(status_of(service.handle(test_frame(900, {}))),
            svc::StatusCode::kUnknownCommand);

  // Garbage payload.
  const svc::Frame malformed = service.handle(svc::make_request(
      svc::CommandId::kEstimate, {1, 2, 3}));
  EXPECT_EQ(status_of(malformed), svc::StatusCode::kMalformedFrame);
  EXPECT_FALSE(svc::error_detail(malformed).empty());

  // Duplicate registration.
  ASSERT_EQ(status_of(service.handle(register_frame(7, 100, 1))),
            svc::StatusCode::kOk);
  EXPECT_EQ(status_of(service.handle(register_frame(7, 100, 1))),
            svc::StatusCode::kAlreadyExists);

  // Unregister; estimate after it is NOT_FOUND.
  svc::UnregisterRequest unregister;
  unregister.population_id = 7;
  EXPECT_EQ(status_of(service.handle(svc::make_request(
                svc::CommandId::kUnregister, svc::encode(unregister)))),
            svc::StatusCode::kOk);
  EXPECT_EQ(status_of(service.handle(estimate_frame(7, 1))),
            svc::StatusCode::kNotFound);

  EXPECT_GE(service.stats().malformed_frames, 1u);
}

TEST(Service, DeadlineDegradesBeforeRefusing) {
  using namespace service_helpers;
  svc::EstimationService service;
  ASSERT_EQ(status_of(service.handle(register_frame(1, 3000, 17))),
            svc::StatusCode::kOk);

  // Baseline: unlimited budget, full plan.
  const svc::Frame full_response =
      service.handle(estimate_frame(1, 0xD15C));
  ASSERT_EQ(status_of(full_response), svc::StatusCode::kOk);
  const auto full = svc::parse_estimate_reply(full_response.payload);
  ASSERT_TRUE(full.has_value());
  ASSERT_EQ(full->degraded, 0u);
  const double full_width =
      (full->ci_hi - full->ci_lo) / (2.0 * full->n_hat);

  // Half the slots the full plan actually consumed: the service must trade
  // rounds for the deadline, flag the reply degraded, and widen the CI.
  const std::uint64_t tight = full->query_slots / 2;
  ASSERT_GT(tight, 0u);
  const svc::Frame tight_response =
      service.handle(estimate_frame(1, 0xD15C, tight));
  ASSERT_EQ(status_of(tight_response), svc::StatusCode::kOk);
  const auto degraded = svc::parse_estimate_reply(tight_response.payload);
  ASSERT_TRUE(degraded.has_value());
  EXPECT_EQ(degraded->degraded, 1u);
  EXPECT_LT(degraded->rounds, full->rounds);
  EXPECT_EQ(degraded->planned_rounds, full->planned_rounds);
  EXPECT_LT(degraded->query_slots, tight + 1);
  const double degraded_width =
      (degraded->ci_hi - degraded->ci_lo) / (2.0 * degraded->n_hat);
  EXPECT_GT(degraded_width, full_width)
      << "a degraded reply must widen its interval, not pretend";

  // A budget that cannot fit one round is refused with the typed status.
  const svc::Frame refused = service.handle(estimate_frame(1, 0xD15C, 3));
  EXPECT_EQ(status_of(refused), svc::StatusCode::kDeadlineExceeded);

  const svc::MonitorReply stats = service.stats();
  EXPECT_GE(stats.degraded, 1u);
  EXPECT_GE(stats.deadline_misses, 1u);
}

TEST(Service, RetryScheduleByteIdenticalAcrossThreads) {
  // The ISSUE.md determinism clause: identical seeded transient-fault
  // streams => byte-identical retry schedules and responses whether the
  // service runs 1, 2, or 8 workers.  Compare the *encoded frames*: any
  // drift in estimate, CI, retries, backoff, or flags shows up.
  using namespace service_helpers;
  constexpr std::uint64_t kRequests = 24;

  const auto run = [&](unsigned workers) {
    svc::ServiceConfig config;
    config.worker_threads = workers;
    config.link_faults.reply_loss_prob = 0.4;  // frequent transient faults
    svc::EstimationService service(config);
    const svc::Frame registered =
        service.handle(register_frame(9, 800, 0xFEED));
    EXPECT_EQ(status_of(registered), svc::StatusCode::kOk);

    std::vector<std::future<svc::Frame>> pending;
    pending.reserve(kRequests);
    for (std::uint64_t i = 0; i < kRequests; ++i) {
      pending.push_back(service.submit(
          estimate_frame(9, rng::derive_seed(0xE57, i), /*deadline=*/0,
                         /*robust=*/static_cast<std::uint8_t>(i % 2))));
    }
    std::vector<std::vector<std::uint8_t>> responses;
    responses.reserve(kRequests);
    for (std::future<svc::Frame>& future : pending) {
      responses.push_back(svc::encode_frame(future.get()));
    }
    return responses;
  };

  const std::vector<std::vector<std::uint8_t>> t1 = run(1);
  const std::vector<std::vector<std::uint8_t>> t2 = run(2);
  const std::vector<std::vector<std::uint8_t>> t8 = run(8);
  ASSERT_EQ(t1.size(), kRequests);
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    EXPECT_EQ(t1[i], t2[i]) << "request " << i << " drifted at 2 workers";
    EXPECT_EQ(t1[i], t8[i]) << "request " << i << " drifted at 8 workers";
  }

  // The fault stream actually exercised the retry machinery: with loss 0.4
  // some requests retried and some did not.
  bool some_retried = false, some_clean = false;
  for (const std::vector<std::uint8_t>& bytes : t1) {
    svc::Decoder decoder;
    decoder.feed(bytes);
    svc::Frame frame;
    ASSERT_EQ(decoder.next(frame), svc::DecodeStatus::kFrame);
    if (static_cast<svc::StatusCode>(frame.status) != svc::StatusCode::kOk) {
      continue;  // retry budget exhausted: typed UNAVAILABLE, also replayed
    }
    const auto reply = svc::parse_estimate_reply(frame.payload);
    ASSERT_TRUE(reply.has_value());
    (reply->retries > 0 ? some_retried : some_clean) = true;
    if (reply->retries > 0) EXPECT_GT(reply->backoff_slots, 0u);
  }
  EXPECT_TRUE(some_retried);
  EXPECT_TRUE(some_clean);
}

TEST(Service, OverloadShedsWithTypedFramesControlPlaneSurvives) {
  using namespace service_helpers;
  svc::ServiceConfig config;
  config.max_inflight = 4;
  config.worker_threads = 2;
  svc::EstimationService service(config);
  ASSERT_EQ(status_of(service.handle(register_frame(1, 200, 3))),
            svc::StatusCode::kOk);

  {
    // Occupy every admission slot; the next estimate must shed immediately
    // with RESOURCE_EXHAUSTED while ping (control plane) still answers.
    svc::EstimationService::InflightHold hold(service, config.max_inflight);
    const svc::Frame shed = service.submit(estimate_frame(1, 1)).get();
    EXPECT_EQ(status_of(shed), svc::StatusCode::kResourceExhausted);
    EXPECT_TRUE(svc::is_retryable(status_of(shed)));

    const svc::Frame pong =
        service.submit(svc::make_request(svc::CommandId::kPing)).get();
    EXPECT_EQ(status_of(pong), svc::StatusCode::kOk);
  }

  // Capacity released: the same request is served.
  EXPECT_EQ(status_of(service.submit(estimate_frame(1, 1)).get()),
            svc::StatusCode::kOk);
  EXPECT_GE(service.stats().shed, 1u);
}

TEST(Service, ShutdownRefusesNewWorkWithTypedStatus) {
  using namespace service_helpers;
  svc::EstimationService service;
  ASSERT_EQ(status_of(service.handle(register_frame(1, 200, 3))),
            svc::StatusCode::kOk);
  service.begin_shutdown();
  EXPECT_TRUE(service.draining());
  const svc::Frame refused = service.submit(estimate_frame(1, 1)).get();
  EXPECT_EQ(status_of(refused), svc::StatusCode::kShuttingDown);
  EXPECT_TRUE(svc::is_retryable(status_of(refused)));
}

// --- population-affine shards ----------------------------------------------

TEST(Shard, RoutingIsStableSpreadsAndClampsDerivedCounts) {
  // shard_of is a pure function of (id, count): stable across calls, and
  // the SplitMix64 mix spreads even sequential id schemes over every shard.
  for (std::uint64_t id = 0; id < 64; ++id) {
    EXPECT_EQ(svc::shard_of(id, 1), 0u);
    EXPECT_EQ(svc::shard_of(id, 8), svc::shard_of(id, 8));
    EXPECT_LT(svc::shard_of(id, 8), 8u);
  }
  std::vector<std::uint64_t> occupancy(8, 0);
  for (std::uint64_t id = 0; id < 256; ++id) ++occupancy[svc::shard_of(id, 8)];
  for (std::size_t s = 0; s < 8; ++s) {
    EXPECT_GT(occupancy[s], 0u) << "shard " << s << " never routed";
  }

  EXPECT_EQ(svc::derive_shard_count(0), 1u);
  EXPECT_EQ(svc::derive_shard_count(1), 1u);
  EXPECT_EQ(svc::derive_shard_count(4), 2u);
  EXPECT_EQ(svc::derive_shard_count(8), 4u);
  EXPECT_EQ(svc::derive_shard_count(64), 8u) << "derived count caps at 8";
}

TEST(Service, ResponsesByteIdenticalAcrossShardCountsAndCacheModes) {
  // The PR's determinism clause: the exact same request script produces
  // byte-identical response frames at shards 1, 2, and 8, with the result
  // cache off or on.  Repeated seeds make the cached runs actually serve
  // hits, so the comparison proves a hit returns the exact bytes the miss
  // path would have computed.
  using namespace service_helpers;
  constexpr std::uint64_t kRequests = 24;

  const auto run = [&](unsigned shards, std::size_t cache_entries) {
    svc::ServiceConfig config;
    config.worker_threads = 4;
    config.shards = shards;
    config.cache_entries = cache_entries;
    config.link_faults.reply_loss_prob = 0.3;
    svc::EstimationService service(config);
    EXPECT_EQ(status_of(service.handle(register_frame(11, 600, 0xFEED))),
              svc::StatusCode::kOk);
    EXPECT_EQ(status_of(service.handle(register_frame(12, 400, 0xFEE0))),
              svc::StatusCode::kOk);
    EXPECT_EQ(service.shard_count(), shards);

    std::vector<std::future<svc::Frame>> pending;
    pending.reserve(kRequests);
    for (std::uint64_t i = 0; i < kRequests; ++i) {
      // Seeds repeat (i % 6) so cached runs get hits; a sprinkling of
      // tight deadlines exercises the degraded paths too.
      pending.push_back(service.submit(
          estimate_frame(11 + (i & 1), rng::derive_seed(0xCAFE, i % 6),
                         (i % 4 == 0) ? 80 : 0)));
    }
    std::vector<std::vector<std::uint8_t>> responses;
    responses.reserve(kRequests);
    for (std::future<svc::Frame>& future : pending) {
      responses.push_back(svc::encode_frame(future.get()));
    }
    return responses;
  };

  const std::vector<std::vector<std::uint8_t>> base = run(1, 0);
  ASSERT_EQ(base.size(), kRequests);
  for (const unsigned shards : {1u, 2u, 8u}) {
    for (const std::size_t cache_entries : {std::size_t{0}, std::size_t{256}}) {
      if (shards == 1 && cache_entries == 0) continue;
      const std::vector<std::vector<std::uint8_t>> other =
          run(shards, cache_entries);
      for (std::uint64_t i = 0; i < kRequests; ++i) {
        EXPECT_EQ(base[i], other[i])
            << "request " << i << " drifted at shards=" << shards
            << " cache_entries=" << cache_entries;
      }
    }
  }
}

TEST(Service, PerShardAdmissionIsolatesColdPopulationFromHotNeighbor) {
  // The tentpole's isolation claim in miniature: saturating one
  // population's shard budget sheds that population only — a population on
  // a different shard is still admitted, and the shed is charged to the hot
  // shard's counter.
  using namespace service_helpers;
  svc::ServiceConfig config;
  config.shards = 4;
  config.worker_threads = 4;
  config.max_inflight = 8;  // 2 admission slots per shard
  svc::EstimationService service(config);
  ASSERT_EQ(service.shards().max_inflight_per_shard(), 2u);

  const std::uint64_t hot = 1;
  const unsigned hot_shard = svc::shard_of(hot, config.shards);
  std::uint64_t cold = 2;
  while (svc::shard_of(cold, config.shards) == hot_shard) ++cold;
  ASSERT_EQ(status_of(service.handle(register_frame(hot, 200, 3))),
            svc::StatusCode::kOk);
  ASSERT_EQ(status_of(service.handle(register_frame(cold, 200, 4))),
            svc::StatusCode::kOk);

  {
    svc::EstimationService::InflightHold hold(
        service, service.shards().max_inflight_per_shard(), hot);
    const svc::Frame shed = service.submit(estimate_frame(hot, 1)).get();
    EXPECT_EQ(status_of(shed), svc::StatusCode::kResourceExhausted);
    EXPECT_EQ(status_of(service.submit(estimate_frame(cold, 1)).get()),
              svc::StatusCode::kOk)
        << "a hot neighbor must not consume the cold population's budget";
  }
  // Budget released: the hot population is served again, and the shed was
  // charged to its shard.
  EXPECT_EQ(status_of(service.submit(estimate_frame(hot, 1)).get()),
            svc::StatusCode::kOk);
  EXPECT_GE(service.shards().shed(hot_shard), 1u);
}

// --- result cache -----------------------------------------------------------

TEST(Cache, EvictionBoundsEntriesAndBytesUnderChurn) {
  // The LRU honors BOTH bounds while distinct keys churn through, and an
  // entry larger than the byte budget is refused outright rather than
  // evicting the world for nothing.
  svc::ResultCacheConfig config;
  config.max_entries = 8;
  config.max_bytes = 4096;
  svc::ResultCache cache(config);
  ASSERT_TRUE(cache.enabled());

  const std::vector<std::uint8_t> payload(100, 0xAB);
  svc::ResultCache::Replay replay;
  for (std::uint64_t i = 0; i < 100; ++i) {
    svc::ResultCache::Key key;
    key.epoch = 1;
    key.population_id = i;
    key.seed = i * 17;
    (void)cache.insert(key, payload, replay);
    const svc::ResultCacheStats stats = cache.stats();
    EXPECT_LE(stats.entries, config.max_entries);
    EXPECT_LE(stats.bytes, config.max_bytes);
  }
  const svc::ResultCacheStats churned = cache.stats();
  EXPECT_EQ(churned.entries, config.max_entries);
  EXPECT_EQ(churned.evictions, 100u - config.max_entries);

  // Only the newest max_entries keys survive, oldest-first eviction.
  std::vector<std::uint8_t> out;
  svc::ResultCache::Replay out_replay;
  svc::ResultCache::Key probe;
  probe.epoch = 1;
  probe.population_id = 0;
  probe.seed = 0;
  EXPECT_FALSE(cache.lookup(probe, out, out_replay));
  probe.population_id = 99;
  probe.seed = 99 * 17;
  EXPECT_TRUE(cache.lookup(probe, out, out_replay));
  EXPECT_EQ(out, payload);

  // A payload the byte budget can never hold is not cached at all.
  const std::vector<std::uint8_t> huge(config.max_bytes + 1, 0xCD);
  svc::ResultCache::Key huge_key;
  huge_key.epoch = 2;
  (void)cache.insert(huge_key, huge, replay);
  EXPECT_FALSE(cache.lookup(huge_key, out, out_replay));
  EXPECT_LE(cache.stats().bytes, config.max_bytes);
}

TEST(Service, CacheHitReplaysFoldsAndReturnsIdenticalPayload) {
  // A hit must be indistinguishable in every fold-derived surface: same
  // payload bytes, same per-population charge (ok/rounds/slots), plus the
  // explicit hit counters and the flight record's cache-hit stamp.
  using namespace service_helpers;
  svc::ServiceConfig config;
  config.cache_entries = 64;
  svc::EstimationService service(config);
  ASSERT_EQ(status_of(service.handle(register_frame(5, 500, 42))),
            svc::StatusCode::kOk);

  const svc::Frame request = estimate_frame(5, 0xBEEF);
  const svc::Frame miss = service.handle(request);
  ASSERT_EQ(status_of(miss), svc::StatusCode::kOk);
  const svc::Frame hit = service.handle(request);
  ASSERT_EQ(status_of(hit), svc::StatusCode::kOk);
  EXPECT_EQ(miss.payload, hit.payload)
      << "a cache hit must return the exact bytes of the original reply";

  const svc::ResultCacheStats stats = service.cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);

  // Fold replay: both requests charged identically, so totals are exactly
  // twice the single-request charge and the hit was counted.
  const auto reply = svc::parse_estimate_reply(miss.payload);
  ASSERT_TRUE(reply.has_value());
  const auto entry = service.registry().find(5);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->stats.ok.load(), 2u);
  EXPECT_EQ(entry->stats.cache_hits.load(), 1u);
  EXPECT_EQ(entry->stats.rounds.load(), 2 * reply->rounds);
  EXPECT_EQ(entry->stats.query_slots.load(), 2 * reply->query_slots);

#if PET_OBS_COMPILED
  // The newest flight record for this request id carries the hit bit.
  const std::vector<svc::RequestRecord> records =
      service.flight().dump(svc::derive_request_id(request));
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].cache_hit, 0u);
  EXPECT_EQ(records[1].cache_hit, 1u);
  EXPECT_EQ(records[1].rounds, records[0].rounds);
  EXPECT_EQ(records[1].latency_slots, records[0].latency_slots);
#endif
}

TEST(Service, CacheInvalidatedByReRegisterViaEpochKeying) {
  // Unregister + re-register mints a fresh epoch, so a request that hit
  // before can never be served the previous population's bytes — even when
  // the new registration looks identical.
  using namespace service_helpers;
  svc::ServiceConfig config;
  config.cache_entries = 64;
  svc::EstimationService service(config);
  ASSERT_EQ(status_of(service.handle(register_frame(7, 300, 9))),
            svc::StatusCode::kOk);
  ASSERT_EQ(status_of(service.handle(estimate_frame(7, 0x5EED))),
            svc::StatusCode::kOk);
  ASSERT_EQ(status_of(service.handle(estimate_frame(7, 0x5EED))),
            svc::StatusCode::kOk);
  EXPECT_EQ(service.cache_stats().hits, 1u);

  svc::UnregisterRequest unregister;
  unregister.population_id = 7;
  ASSERT_EQ(status_of(service.handle(svc::make_request(
                svc::CommandId::kUnregister, svc::encode(unregister)))),
            svc::StatusCode::kOk);
  ASSERT_EQ(status_of(service.handle(register_frame(7, 300, 9))),
            svc::StatusCode::kOk);

  // Same id, same tags, same seed — but a new epoch: must miss.
  ASSERT_EQ(status_of(service.handle(estimate_frame(7, 0x5EED))),
            svc::StatusCode::kOk);
  EXPECT_EQ(service.cache_stats().hits, 1u);
  EXPECT_EQ(service.cache_stats().misses, 2u);
  // And the fresh entry is hittable under the new epoch.
  ASSERT_EQ(status_of(service.handle(estimate_frame(7, 0x5EED))),
            svc::StatusCode::kOk);
  EXPECT_EQ(service.cache_stats().hits, 2u);
}

TEST(Service, ConcurrentRegisterUnregisterVsEstimatesUnderSharding) {
  // TSan payload (the service label runs under -fsanitize=thread in CI):
  // estimates racing register/unregister churn across 4 shards with the
  // cache on must only ever produce typed outcomes — the epoch-keyed cache
  // and sliced registry have no window where a stale entry or a torn map
  // is observable.
  using namespace service_helpers;
  svc::ServiceConfig config;
  config.shards = 4;
  config.worker_threads = 4;
  config.cache_entries = 64;
  svc::EstimationService service(config);
  for (std::uint64_t id = 1; id <= 4; ++id) {
    ASSERT_EQ(status_of(service.handle(register_frame(id, 60, id))),
              svc::StatusCode::kOk);
  }

  std::atomic<bool> stop{false};
  std::thread churn([&] {
    svc::UnregisterRequest unregister;
    for (int round = 0; round < 30; ++round) {
      for (std::uint64_t id = 1; id <= 4; ++id) {
        unregister.population_id = id;
        (void)service.handle(svc::make_request(svc::CommandId::kUnregister,
                                               svc::encode(unregister)));
        (void)service.handle(
            register_frame(id, 60 + 10 * (round % 3),
                           rng::derive_seed(id, static_cast<std::uint64_t>(
                                                    round))));
      }
    }
    stop.store(true, std::memory_order_release);
  });

  std::vector<std::thread> clients;
  for (unsigned c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const svc::Frame response =
            service
                .submit(estimate_frame(1 + (i % 4),
                                       rng::derive_seed(c, i % 8),
                                       /*deadline_slots=*/0, /*robust=*/0))
                .get();
        const svc::StatusCode status = status_of(response);
        EXPECT_TRUE(status == svc::StatusCode::kOk ||
                    status == svc::StatusCode::kNotFound)
            << "unexpected status " << static_cast<int>(status);
        ++i;
      }
    });
  }
  churn.join();
  for (std::thread& client : clients) client.join();

  // The run exercised both planes; every surviving population still serves.
  for (std::uint64_t id = 1; id <= 4; ++id) {
    EXPECT_EQ(status_of(service.handle(estimate_frame(id, 1, 0, 0))),
              svc::StatusCode::kOk);
  }
}

// --- service observability plane -------------------------------------------

#if PET_OBS_COMPILED

TEST(ServiceObs, MetricsDeterministicDomainByteIdenticalAcrossThreads) {
  // The ISSUE acceptance clause: the kDeterministic scope of a kMetrics
  // snapshot — obs counters, slot-unit histograms, and the "service"
  // member — is byte-identical at worker_threads 1, 2, and 8 after an
  // identical seeded request script (deadline misses, retries, degraded
  // responses included).  The payload bytes ARE the comparison.
  using namespace service_helpers;
  const obs::Level saved_level = obs::level();
  obs::set_level(obs::Level::kCounters);

  const auto run = [&](unsigned workers) {
    obs::MetricsRegistry::instance().reset();
    svc::ServiceConfig config;
    config.worker_threads = workers;
    config.link_faults.reply_loss_prob = 0.3;  // exercise the retry plane
    svc::EstimationService service(config);
    EXPECT_EQ(status_of(service.handle(register_frame(3, 900, 0xFEED))),
              svc::StatusCode::kOk);
    EXPECT_EQ(status_of(service.handle(register_frame(4, 700, 0xFEE0))),
              svc::StatusCode::kOk);
    std::vector<std::future<svc::Frame>> pending;
    for (std::uint64_t i = 0; i < 24; ++i) {
      // Mix of unlimited and tight deadlines: clean, degraded, and
      // DEADLINE_EXCEEDED outcomes all feed the per-population cells.
      const std::uint64_t deadline = (i % 3 == 0) ? 60 : 0;
      pending.push_back(service.submit(estimate_frame(
          3 + (i & 1), rng::derive_seed(0x0B5, i), deadline)));
    }
    for (std::future<svc::Frame>& future : pending) (void)future.get();

    svc::MetricsRequest request;
    request.scope =
        static_cast<std::uint8_t>(svc::MetricsScope::kDeterministic);
    const svc::Frame response = service.handle(svc::make_request(
        svc::CommandId::kMetrics, svc::encode(request)));
    EXPECT_EQ(status_of(response), svc::StatusCode::kOk);
    return response.payload;
  };

  const std::vector<std::uint8_t> t1 = run(1);
  const std::vector<std::uint8_t> t2 = run(2);
  const std::vector<std::uint8_t> t8 = run(8);
  EXPECT_FALSE(t1.empty());
  EXPECT_EQ(t1, t2) << "kDeterministic snapshot drifted at 2 workers";
  EXPECT_EQ(t1, t8) << "kDeterministic snapshot drifted at 8 workers";

  // And it is a valid pet.obs.v1 document carrying the service member.
  const obs::JsonValue root = obs::parse_json(
      std::string(t1.begin(), t1.end()));
  const obs::JsonValue* schema = root.find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->string, "pet.obs.v1");
  EXPECT_EQ(root.find("profile"), nullptr)
      << "deterministic scope must omit the wall-clock profile";
  const obs::JsonValue* service_member = root.find("service");
  ASSERT_NE(service_member, nullptr);
  const obs::JsonValue* populations = service_member->find("populations");
  ASSERT_NE(populations, nullptr);
  EXPECT_EQ(populations->object.size(), 2u);
  obs::set_level(saved_level);
}

TEST(ServiceObs, FlightRecorderCapturesDegradationBitmaskAndRequestId) {
  using namespace service_helpers;
  svc::EstimationService service;
  ASSERT_EQ(status_of(service.handle(register_frame(1, 3000, 17))),
            svc::StatusCode::kOk);

  // Full-budget run tells us the plan's appetite; half of that forces the
  // deadline planner to degrade (same shape as DeadlineDegradesBeforeRefusing).
  const svc::Frame full_response = service.handle(estimate_frame(1, 0xD15C));
  ASSERT_EQ(status_of(full_response), svc::StatusCode::kOk);
  const auto full = svc::parse_estimate_reply(full_response.payload);
  ASSERT_TRUE(full.has_value());

  const svc::Frame tight_request =
      estimate_frame(1, 0xD15C, full->query_slots / 2);
  const std::uint64_t request_id = svc::derive_request_id(tight_request);
  const svc::Frame tight_response = service.handle(tight_request);
  ASSERT_EQ(status_of(tight_response), svc::StatusCode::kOk);
  const auto tight = svc::parse_estimate_reply(tight_response.payload);
  ASSERT_TRUE(tight.has_value());
  ASSERT_EQ(tight->degraded, 1u);

  svc::FlightDumpRequest filter;
  filter.request_id = request_id;
  const svc::Frame dumped = service.handle(svc::make_request(
      svc::CommandId::kFlightDump, svc::encode(filter)));
  ASSERT_EQ(status_of(dumped), svc::StatusCode::kOk);
  const auto reply = svc::parse_flight_dump_reply(dumped.payload);
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->records.size(), 1u);
  const svc::RequestRecord& record = reply->records[0];
  EXPECT_EQ(record.request_id, request_id);
  EXPECT_EQ(record.population_id, 1u);
  EXPECT_EQ(record.command,
            static_cast<std::uint16_t>(svc::CommandId::kEstimate));
  EXPECT_EQ(record.status, static_cast<std::uint16_t>(svc::StatusCode::kOk));
  EXPECT_NE(record.degrade_mask, 0u);
  // The mask decomposes the reply's single degraded bit: the truncation
  // bit mirrors the reply's flag, and a deadline-driven degrade must have
  // set truncation and/or the fit-shortfall bit.
  EXPECT_EQ((record.degrade_mask & svc::kDegradeTruncated) != 0,
            tight->truncated != 0);
  EXPECT_NE(record.degrade_mask &
                (svc::kDegradeTruncated | svc::kDegradeFitShort),
            0u);
  EXPECT_EQ(record.rounds, tight->rounds);
  EXPECT_EQ(record.latency_slots, tight->backoff_slots + tight->query_slots);
}

TEST(ServiceObs, FlightRecorderWrapsAroundThroughTheWireCommand) {
  using namespace service_helpers;
  svc::ServiceConfig config;
  config.flight_capacity = 4;
  svc::EstimationService service(config);
  ASSERT_EQ(status_of(service.handle(register_frame(2, 300, 5))),
            svc::StatusCode::kOk);

  std::vector<std::uint64_t> ids;
  for (std::uint64_t i = 0; i < 10; ++i) {
    const svc::Frame request = estimate_frame(2, 1000 + i);
    ids.push_back(svc::derive_request_id(request));
    ASSERT_EQ(status_of(service.handle(request)), svc::StatusCode::kOk);
  }
  // 1 register + 10 estimates recorded; ring holds only the newest 4.
  EXPECT_EQ(service.flight().recorded(), 11u);

  const svc::Frame dumped = service.handle(
      svc::make_request(svc::CommandId::kFlightDump));
  ASSERT_EQ(status_of(dumped), svc::StatusCode::kOk);
  const auto reply = svc::parse_flight_dump_reply(dumped.payload);
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->records.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(reply->records[i].request_id, ids[6 + i])
        << "ring must keep the newest records in arrival order";
  }
}

TEST(ServiceObs, ShedErrorCarriesRequestIdAndShedBit) {
  using namespace service_helpers;
  svc::ServiceConfig config;
  config.max_inflight = 2;
  config.worker_threads = 1;
  svc::EstimationService service(config);
  ASSERT_EQ(status_of(service.handle(register_frame(1, 200, 3))),
            svc::StatusCode::kOk);

  const svc::Frame request = estimate_frame(1, 77);
  const std::uint64_t request_id = svc::derive_request_id(request);
  {
    svc::EstimationService::InflightHold hold(service, config.max_inflight);
    const svc::Frame shed = service.submit(request).get();
    ASSERT_EQ(status_of(shed), svc::StatusCode::kResourceExhausted);
    const std::string detail = svc::error_detail(shed);
    EXPECT_NE(detail.find("request-id="), std::string::npos) << detail;
    EXPECT_NE(detail.find(svc::format_request_id(request_id)),
              std::string::npos)
        << detail;
  }

  svc::FlightDumpRequest filter;
  filter.request_id = request_id;
  const svc::Frame dumped = service.handle(svc::make_request(
      svc::CommandId::kFlightDump, svc::encode(filter)));
  const auto reply = svc::parse_flight_dump_reply(dumped.payload);
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->records.size(), 1u);
  EXPECT_EQ(reply->records[0].degrade_mask & svc::kDegradeShed,
            svc::kDegradeShed);
  EXPECT_EQ(reply->records[0].population_id, 1u);
  EXPECT_EQ(reply->records[0].status,
            static_cast<std::uint16_t>(svc::StatusCode::kResourceExhausted));
}

TEST(ServiceObs, MonitorAndMetricsShareOneSourceOfTruth) {
  // The staleness fix: kMonitor's degraded/deadline-miss/retry totals are
  // folded from the same registry cells the kMetrics export renders, so
  // the two commands can never disagree.
  using namespace service_helpers;
  svc::ServiceConfig config;
  config.link_faults.reply_loss_prob = 0.4;
  svc::EstimationService service(config);
  ASSERT_EQ(status_of(service.handle(register_frame(1, 3000, 17))),
            svc::StatusCode::kOk);
  const svc::Frame full_response = service.handle(estimate_frame(1, 0xD15C));
  ASSERT_EQ(status_of(full_response), svc::StatusCode::kOk);
  const auto full = svc::parse_estimate_reply(full_response.payload);
  ASSERT_TRUE(full.has_value());
  for (std::uint64_t i = 0; i < 6; ++i) {
    (void)service.handle(
        estimate_frame(1, rng::derive_seed(0xAB, i), full->query_slots / 2));
  }

  const svc::MonitorReply stats = service.stats();
  const svc::Frame metrics = service.handle(
      svc::make_request(svc::CommandId::kMetrics));
  ASSERT_EQ(status_of(metrics), svc::StatusCode::kOk);
  const obs::JsonValue root = obs::parse_json(
      std::string(metrics.payload.begin(), metrics.payload.end()));
  const obs::JsonValue* service_member = root.find("service");
  ASSERT_NE(service_member, nullptr);
  const obs::JsonValue* totals = service_member->find("totals");
  ASSERT_NE(totals, nullptr);
  const auto total_of = [&](const char* key) {
    const obs::JsonValue* value = totals->find(key);
    return value != nullptr ? static_cast<std::uint64_t>(value->number) : 0u;
  };
  EXPECT_GT(stats.degraded, 0u);
  EXPECT_EQ(total_of("degraded"), stats.degraded);
  EXPECT_EQ(total_of("deadline_misses"), stats.deadline_misses);
  EXPECT_EQ(total_of("retries"), stats.retries);

  // Unregistering folds the population into the retired accumulator: the
  // monotone totals must survive the entry's removal.
  svc::UnregisterRequest unregister;
  unregister.population_id = 1;
  ASSERT_EQ(status_of(service.handle(svc::make_request(
                svc::CommandId::kUnregister, svc::encode(unregister)))),
            svc::StatusCode::kOk);
  EXPECT_EQ(service.stats().degraded, stats.degraded);
  EXPECT_EQ(service.stats().retries, stats.retries);
}

TEST(ServiceObs, PopulationScopeFiltersKnownAndRejectsUnknown) {
  using namespace service_helpers;
  svc::EstimationService service;
  ASSERT_EQ(status_of(service.handle(register_frame(9, 500, 2))),
            svc::StatusCode::kOk);
  ASSERT_EQ(status_of(service.handle(estimate_frame(9, 123))),
            svc::StatusCode::kOk);

  svc::MetricsRequest request;
  request.scope = static_cast<std::uint8_t>(svc::MetricsScope::kPopulation);
  request.population_id = 9;
  const svc::Frame known = service.handle(svc::make_request(
      svc::CommandId::kMetrics, svc::encode(request)));
  ASSERT_EQ(status_of(known), svc::StatusCode::kOk);
  const obs::JsonValue root = obs::parse_json(
      std::string(known.payload.begin(), known.payload.end()));
  const obs::JsonValue* population = root.find("population");
  ASSERT_NE(population, nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(population->number), 9u);
  const obs::JsonValue* counters = root.find("counters");
  ASSERT_NE(counters, nullptr);
  const obs::JsonValue* requests = counters->find("pet.svc.pop.requests");
  ASSERT_NE(requests, nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(requests->number), 1u);

  request.population_id = 404;
  EXPECT_EQ(status_of(service.handle(svc::make_request(
                svc::CommandId::kMetrics, svc::encode(request)))),
            svc::StatusCode::kNotFound);
}

TEST(ServiceObs, MetricsExportConcurrentWithTraffic) {
  // TSan payload (the service label runs under -fsanitize=thread in CI):
  // kMetrics/kFlightDump snapshots taken while worker threads hammer the
  // estimate plane must be data-race free and always well-formed.
  using namespace service_helpers;
  svc::ServiceConfig config;
  config.worker_threads = 4;
  svc::EstimationService service(config);
  ASSERT_EQ(status_of(service.handle(register_frame(1, 400, 3))),
            svc::StatusCode::kOk);

  std::atomic<bool> stop{false};
  std::thread poller([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const svc::Frame metrics = service.handle(
          svc::make_request(svc::CommandId::kMetrics));
      EXPECT_EQ(static_cast<svc::StatusCode>(metrics.status),
                svc::StatusCode::kOk);
      const svc::Frame dump = service.handle(
          svc::make_request(svc::CommandId::kFlightDump));
      EXPECT_EQ(static_cast<svc::StatusCode>(dump.status),
                svc::StatusCode::kOk);
    }
  });
  std::vector<std::thread> clients;
  for (unsigned c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      for (std::uint64_t i = 0; i < 16; ++i) {
        (void)service.submit(
            estimate_frame(1, rng::derive_seed(c, i))).get();
      }
    });
  }
  for (std::thread& client : clients) client.join();
  stop.store(true, std::memory_order_release);
  poller.join();
  EXPECT_GE(service.flight().recorded(), 49u);
}

#else  // !PET_OBS_COMPILED

TEST(ServiceObs, ExportCommandsReturnTypedUnsupportedWhenCompiledOut) {
  // PET_OBS=OFF builds still speak the full v1.1 command set; the export
  // commands answer with the typed capability error instead of vanishing.
  using namespace service_helpers;
  svc::EstimationService service;
  const svc::Frame metrics = service.handle(
      svc::make_request(svc::CommandId::kMetrics));
  EXPECT_EQ(status_of(metrics), svc::StatusCode::kUnsupported);
  EXPECT_FALSE(svc::error_detail(metrics).empty());
  const svc::Frame dump = service.handle(
      svc::make_request(svc::CommandId::kFlightDump));
  EXPECT_EQ(status_of(dump), svc::StatusCode::kUnsupported);
  EXPECT_FALSE(svc::is_retryable(svc::StatusCode::kUnsupported));
}

#endif  // PET_OBS_COMPILED

// --- chaos link ------------------------------------------------------------

TEST(Chaos, SeededLinkReplaysBitForBit) {
  sim::ChannelImpairments impairments;
  impairments.reply_loss_prob = 0.2;
  impairments.false_busy_prob = 0.2;
  impairments.seed = 0xC405;

  const auto run = [&] {
    svc::ChaosLink link(impairments);
    std::vector<svc::ChaosLink::Action> actions;
    std::vector<std::vector<std::uint8_t>> outputs;
    for (std::uint16_t i = 0; i < 200; ++i) {
      std::vector<std::uint8_t> bytes = svc::encode_frame(
          test_frame(i, {static_cast<std::uint8_t>(i), 0x55}));
      actions.push_back(link.apply(bytes));
      outputs.push_back(std::move(bytes));
    }
    return std::make_pair(std::move(actions), std::move(outputs));
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);

  // The mix actually exercised more than one action.
  const auto count = [&](svc::ChaosLink::Action action) {
    return std::count(first.first.begin(), first.first.end(), action);
  };
  EXPECT_GT(count(svc::ChaosLink::Action::kDeliver), 0);
  EXPECT_GT(count(svc::ChaosLink::Action::kDropFrame) +
                count(svc::ChaosLink::Action::kCorruptBit),
            0);
}

TEST(Chaos, CorruptedFramesAreCaughtByTheCodec) {
  sim::ChannelImpairments impairments;
  impairments.false_busy_prob = 1.0;  // every frame gets a bit flip
  svc::ChaosLink link(impairments);

  const svc::Frame original = test_frame(4, {1, 2, 3, 4, 5, 6, 7, 8});
  const std::vector<std::uint8_t> clean = svc::encode_frame(original);
  for (int i = 0; i < 50; ++i) {
    std::vector<std::uint8_t> bytes = clean;
    const svc::ChaosLink::Action action = link.apply(bytes);
    ASSERT_EQ(action, svc::ChaosLink::Action::kCorruptBit);
    ASSERT_NE(bytes, clean);

    svc::Decoder decoder;
    decoder.feed(bytes);
    const DrainResult result = drain(decoder);
    // Detected (typed error) or skipped; never a silently different frame.
    for (const svc::Frame& decoded : result.frames) {
      EXPECT_TRUE(frames_equal(original, decoded));
    }
    EXPECT_TRUE(result.frames.empty());
    EXPECT_GE(result.errors.size(), 1u);
  }
  EXPECT_EQ(link.corrupted(), 50u);
}

// --- cooperative cancellation / truncated artifacts ------------------------

TEST(Cancellation, SerialRunnerStopsExactlyAtTheCancelPoint) {
  // The serial path is deterministic: cancel during trial 64 means trials
  // 0..64 fold and 65 is never started.
  runtime::TrialRunner runner(1);
  const runtime::CancelToken token = runtime::CancelToken::cancellable();
  runner.set_cancel_token(token);
  std::uint64_t folded = 0;
  const std::uint64_t total = runner.run<std::uint64_t>(
      10000,
      [&](std::uint64_t i) {
        if (i == 64) token.cancel();
        return i;
      },
      [&](std::uint64_t, std::uint64_t&&) { ++folded; });
  EXPECT_EQ(total, 65u);
  EXPECT_EQ(folded, 65u);
}

TEST(Cancellation, ParallelRunnerDrainsToAContiguousPrefix) {
  // Parallel scheduling (work stealing) makes the cut point nondeterministic
  // — the contract is only that the fold sees a contiguous prefix and the
  // sweep actually stops early.
  runtime::TrialRunner runner(4);
  const runtime::CancelToken token = runtime::CancelToken::cancellable();
  runner.set_cancel_token(token);

  std::atomic<std::uint64_t> folded{0};
  const std::uint64_t total = runner.run<std::uint64_t>(
      10000,
      [&](std::uint64_t i) {
        if (i == 64) token.cancel();
        return i;
      },
      [&](std::uint64_t i, std::uint64_t&& value) {
        EXPECT_EQ(value, i) << "fold must replay the serial order";
        folded.fetch_add(1);
      });
  EXPECT_LT(total, 10000u) << "cancel() fired mid-sweep; a full run means "
                              "the token was ignored";
  EXPECT_EQ(total, folded.load());
}

TEST(Cancellation, TruncatedBenchArtifactIsMarked) {
  runtime::BenchReport report("cancel_test", 1);
  report.add_row("t", {"a"}, {"1"});
  EXPECT_EQ(report.to_json().find("\"truncated\""), std::string::npos)
      << "untruncated artifacts must keep the historical schema";
  report.set_truncated(true);
  EXPECT_NE(report.to_json().find("\"truncated\": true"), std::string::npos);
}

}  // namespace
