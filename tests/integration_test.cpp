// End-to-end integration tests: full populations driven through the
// device-level simulation, anonymity auditing of live sessions, dynamic
// populations, impaired channels, and cross-protocol comparisons.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "channel/device_channel.hpp"
#include "channel/exact_channel.hpp"
#include "channel/sampled_channel.hpp"
#include "channel/sorted_pet_channel.hpp"
#include "core/anonymity.hpp"
#include "core/estimator.hpp"
#include "core/planner.hpp"
#include "core/theory.hpp"
#include "protocols/fneb.hpp"
#include "protocols/identification.hpp"
#include "protocols/lof.hpp"
#include "sim/devices.hpp"
#include "sim/medium.hpp"
#include "sim/simulator.hpp"
#include "stats/accuracy.hpp"
#include "tags/population.hpp"

namespace pet {
namespace {

std::vector<TagId> make_tags(std::size_t n, std::uint64_t seed) {
  const auto pop = tags::TagPopulation::generate(n, seed);
  return {pop.ids().begin(), pop.ids().end()};
}

TEST(EndToEnd, DeviceLevelPetEstimateLandsNearTruth) {
  // Full fidelity: per-tag state machines, broadcast round begins, real
  // reply windows.  Small n keeps the O(n)/slot cost testable.
  const auto tags = make_tags(2000, 1);
  chan::DeviceChannel channel(tags, chan::DeviceKind::kPet);
  const core::PetEstimator estimator(core::PetConfig{}, {0.1, 0.05});
  const auto result = estimator.estimate_with_rounds(channel, 700, 2);
  EXPECT_NEAR(result.n_hat, 2000.0, 0.12 * 2000.0);
  EXPECT_EQ(result.ledger.total_slots(), 3500u);
  EXPECT_GT(channel.airtime_now(), 0u);
}

TEST(EndToEnd, PerRoundRehashModeWorksOnDevices) {
  const auto tags = make_tags(1500, 2);
  chan::DeviceChannelConfig config;
  config.pet_mode = sim::PetTagDevice::CodeMode::kPerRound;
  chan::DeviceChannel channel(tags, chan::DeviceKind::kPet, config);
  core::PetConfig pet;
  pet.tags_rehash = true;
  const auto result = core::PetEstimator(pet, {0.1, 0.05})
                          .estimate_with_rounds(channel, 700, 3);
  EXPECT_NEAR(result.n_hat, 1500.0, 0.12 * 1500.0);
  // Active tags hash once per round.
  EXPECT_EQ(channel.total_tag_cost().hash_evaluations, 700u * 1500u);
}

TEST(EndToEnd, PreloadedTagsNeverHash) {
  const auto tags = make_tags(500, 3);
  chan::DeviceChannel channel(tags, chan::DeviceKind::kPet);
  const core::PetEstimator estimator(core::PetConfig{}, {0.1, 0.05});
  (void)estimator.estimate_with_rounds(channel, 100, 4);
  EXPECT_EQ(channel.total_tag_cost().hash_evaluations, 0u)
      << "Section 4.5: passive-tag PET needs no on-chip hashing";
}

TEST(EndToEnd, PetSessionIsAnonymousAlohaIdIsNot) {
  // Overhear a PET session: no identifying uplink bits.
  const auto tags = make_tags(300, 5);
  sim::Simulator simulator;
  sim::Medium medium;
  core::AnonymityAuditor pet_auditor;
  medium.set_observer(pet_auditor.observer());
  std::vector<std::unique_ptr<sim::PetTagDevice>> devices;
  for (const TagId id : tags) {
    devices.push_back(std::make_unique<sim::PetTagDevice>(
        id, rng::HashKind::kMix64, 32,
        sim::PetTagDevice::CodeMode::kPreloaded, 0x9a9a5eedULL));
    medium.attach(devices.back().get());
  }
  for (std::uint64_t r = 0; r < 50; ++r) {
    const BitCode path =
        rng::uniform_code(rng::HashKind::kMix64, r, 0x700dULL, 32);
    for (unsigned len = 1; len <= 32; len += 7) {
      (void)medium.run_slot(sim::PrefixQueryCmd{path, len, 32}, simulator);
    }
  }
  EXPECT_GT(pet_auditor.report().slots_observed, 0u);
  EXPECT_GT(pet_auditor.report().busy_slots, 0u);
  EXPECT_TRUE(pet_auditor.report().anonymous())
      << "Section 4.6.4: PET must not leak identities";

  // The same eavesdropper on a DFSA identification session sees IDs.
  sim::Simulator simulator2;
  sim::Medium medium2;
  core::AnonymityAuditor id_auditor;
  medium2.set_observer(id_auditor.observer());
  std::vector<std::unique_ptr<sim::AlohaTagDevice>> aloha;
  for (const TagId id : make_tags(50, 6)) {
    aloha.push_back(std::make_unique<sim::AlohaTagDevice>(
        id, rng::HashKind::kMix64, true));
    medium2.attach(aloha.back().get());
  }
  medium2.broadcast(sim::FrameBeginCmd{1, 256, 1.0, 16}, simulator2);
  for (std::uint64_t s = 1; s <= 256; ++s) {
    (void)medium2.run_slot(sim::SlotPollCmd{s, 1}, simulator2);
  }
  EXPECT_FALSE(id_auditor.report().anonymous())
      << "identification leaks tag IDs on singleton slots";
}

TEST(EndToEnd, DynamicPopulationIsTracked) {
  // Tags join and leave between estimation sessions; each session sees the
  // current population.
  auto pop = tags::TagPopulation::generate(10000, 7);
  const core::PetEstimator estimator(core::PetConfig{}, {0.1, 0.05});

  auto estimate_now = [&](std::uint64_t seed) {
    chan::SortedPetChannel channel({pop.ids().begin(), pop.ids().end()});
    return estimator.estimate_with_rounds(channel, 800, seed).n_hat;
  };

  EXPECT_NEAR(estimate_now(1), 10000.0, 1200.0);
  pop.join_fresh(20000, 8);
  EXPECT_NEAR(estimate_now(2), 30000.0, 3600.0);
  pop.leave_random(25000, 9);
  EXPECT_NEAR(estimate_now(3), 5000.0, 600.0);
}

TEST(EndToEnd, ModerateReplyLossBiasesEstimateDown) {
  // The paper assumes a lossless link (Section 5.1); quantify the failure
  // mode outside that assumption: losing replies can only erase busy slots,
  // so the depth estimate and n̂ shrink.
  const auto tags = make_tags(5000, 10);
  chan::DeviceChannelConfig lossy;
  lossy.impairments.reply_loss_prob = 0.5;
  chan::DeviceChannel channel(tags, chan::DeviceKind::kPet, lossy);
  const core::PetEstimator estimator(core::PetConfig{}, {0.1, 0.05});
  const auto result = estimator.estimate_with_rounds(channel, 300, 11);
  EXPECT_LT(result.n_hat, 5000.0);
  EXPECT_GT(result.n_hat, 500.0) << "graceful degradation, not collapse";
}

TEST(EndToEnd, PetBeatsBaselinesAtEqualAccuracy) {
  // The headline comparison (Tables 4-5): at (eps, delta) = (5%, 1%) PET
  // uses less than half the slots of FNEB and LoF.
  const stats::AccuracyRequirement req{0.05, 0.01};
  chan::SampledChannel pet_channel(50000, 12);
  chan::SampledChannel fneb_channel(50000, 12);
  chan::SampledChannel lof_channel(50000, 12);

  const auto pet = core::PetEstimator(core::PetConfig{}, req)
                       .estimate(pet_channel, 13);
  const auto fneb = proto::FnebEstimator(proto::FnebConfig{}, req)
                        .estimate(fneb_channel, 13);
  const auto lof = proto::LofEstimator(proto::LofConfig{}, req)
                       .estimate(lof_channel, 13);

  EXPECT_LT(pet.ledger.total_slots(), fneb.ledger.total_slots() / 2);
  EXPECT_LT(pet.ledger.total_slots(), lof.ledger.total_slots() / 2);
  EXPECT_NEAR(pet.n_hat, 50000.0, 0.05 * 50000.0);
}

TEST(EndToEnd, EstimationBeatsIdentificationByOrdersOfMagnitude) {
  // Section 1: identification needs Theta(n) slots; PET needs O(log log n)
  // per round.  At n = 10^6 the gap is ~40x even for a tight contract.
  const std::uint64_t n = 1000000;
  chan::SampledChannel channel(n, 14);
  const auto pet = core::PetEstimator(core::PetConfig{}, {0.05, 0.01})
                       .estimate(channel, 15);
  const auto id = proto::identify_treewalk_sampled(n, proto::TreeWalkConfig{},
                                                   16);
  EXPECT_GT(id.ledger.total_slots(), 40 * pet.ledger.total_slots());
}

TEST(EndToEnd, TheoryMatchesSimulationDistribution) {
  // Fig. 6a: the theoretical model and the simulated protocol produce
  // estimates with matching spread.
  const std::uint64_t n = 20000;
  const std::uint64_t rounds = 500;
  rng::Xoshiro256ss gen(17);
  const core::TheoreticalPet theory(n, 32, rounds);

  stats::TrialSummary theory_summary(static_cast<double>(n));
  stats::TrialSummary sim_summary(static_cast<double>(n));
  const core::PetEstimator estimator(core::PetConfig{}, {0.1, 0.05});
  chan::SampledChannel channel(n, 18);
  for (int t = 0; t < 40; ++t) {
    theory_summary.add(theory.sample_estimate(gen));
    sim_summary.add(
        estimator.estimate_with_rounds(channel, rounds, static_cast<std::uint64_t>(t)).n_hat);
  }
  EXPECT_NEAR(theory_summary.accuracy(), 1.0, 0.03);
  EXPECT_NEAR(sim_summary.accuracy(), 1.0, 0.03);
  EXPECT_NEAR(theory_summary.normalized_deviation(),
              sim_summary.normalized_deviation(), 0.05);
}

}  // namespace
}  // namespace pet
