// Tests for the EPC Gen2 link-timing model and the energy accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "channel/device_channel.hpp"
#include "common/ensure.hpp"
#include "core/estimator.hpp"
#include "sim/energy.hpp"
#include "sim/gen2_timing.hpp"
#include "tags/population.hpp"

namespace pet::sim {
namespace {

TEST(Gen2Link, DefaultsValidate) {
  Gen2LinkConfig link;
  EXPECT_NO_THROW(link.validate());
}

TEST(Gen2Link, RejectsOutOfSpecParameters) {
  Gen2LinkConfig link;
  link.tari_us = 3.0;
  EXPECT_THROW(link.validate(), PreconditionError);
  link = Gen2LinkConfig{};
  link.miller = 3;
  EXPECT_THROW(link.validate(), PreconditionError);
  link = Gen2LinkConfig{};
  link.pie_ratio = 2.5;
  EXPECT_THROW(link.validate(), PreconditionError);
}

TEST(Gen2Link, DerivedQuantitiesMatchHandComputation) {
  Gen2LinkConfig link;
  link.tari_us = 6.25;
  link.pie_ratio = 1.75;
  link.divide_ratio = 64.0 / 3.0;
  link.trcal_multiplier = 3.0;
  link.miller = 4;
  // RTcal = 6.25 * 2.75 = 17.1875 us.
  EXPECT_NEAR(link.rtcal_us(), 17.1875, 1e-9);
  // BLF = (64/3) / (3 * 17.1875) = 0.41374 per us (~414 kHz).
  EXPECT_NEAR(link.blf_per_us(), 64.0 / 3.0 / (3.0 * 17.1875), 1e-9);
  // Average PIE bit = 6.25 * 2.75 / 2.
  EXPECT_NEAR(link.reader_bit_us(), 8.59375, 1e-9);
  // Miller-4 bit = 4 / BLF ~ 9.667 us.
  EXPECT_NEAR(link.tag_bit_us(), 4.0 / link.blf_per_us(), 1e-9);
}

TEST(Gen2Link, SlowProfileIsSlower) {
  Gen2LinkConfig fast;  // 6.25 us Tari
  Gen2LinkConfig slow;
  slow.tari_us = 25.0;
  slow.divide_ratio = 8.0;
  const double fast_slot = gen2_slot_us(fast, 32, 1);
  const double slow_slot = gen2_slot_us(slow, 32, 1);
  EXPECT_GT(slow_slot, 2.0 * fast_slot);
}

TEST(Gen2Link, IdleSlotsAreCheaperThanBusySlots) {
  Gen2LinkConfig link;
  EXPECT_LT(gen2_slot_us(link, 32, 0), gen2_slot_us(link, 32, 1));
  EXPECT_LT(gen2_slot_us(link, 1, 1), gen2_slot_us(link, 32, 1))
      << "shorter commands cost less airtime";
}

TEST(Gen2Link, SessionTimeDecomposes) {
  Gen2LinkConfig link;
  const double total = gen2_session_us(link, 100, 50, 32, 1, 30, 32);
  const double busy = 100.0 * gen2_slot_us(link, 32, 1);
  const double idle = 50.0 * gen2_slot_us(link, 32, 0);
  EXPECT_GT(total, busy + idle);
  EXPECT_NEAR(total, busy + idle +
                         30.0 * (12.5 * link.tari_us +
                                 32.0 * link.reader_bit_us()),
              1e-6);
}

TEST(Gen2Link, SlotTimingRoundsToMicroseconds) {
  const SlotTiming timing = gen2_slot_timing(Gen2LinkConfig{}, 32);
  EXPECT_GT(timing.command_us, 0u);
  EXPECT_GT(timing.reply_us, 0u);
  EXPECT_LT(timing.slot_us(), 2000u) << "a fast-profile slot is < 2 ms";
}

TEST(Gen2Link, PetEstimateLatencyIsSeconds) {
  // Sanity anchor for the latency claims in the examples: a full
  // (5%, 1%) estimate (23485 slots) takes single-digit seconds on the fast
  // profile — vs minutes for identifying 50k tags.
  Gen2LinkConfig link;
  const double est_s = gen2_session_us(link, 14000, 9485, 32, 1, 4697, 32) /
                       1e6;
  EXPECT_GT(est_s, 1.0);
  EXPECT_LT(est_s, 20.0);
}

TEST(Energy, ValidatesModel) {
  EnergyModel model;
  model.reader_tx_mw = -1.0;
  EXPECT_THROW(model.validate(), PreconditionError);
}

TEST(Energy, ReaderEnergyScalesWithAirtime) {
  EnergyModel model;
  SlotLedger short_session;
  short_session.idle_slots = 100;
  short_session.airtime_us = 100 * 400;
  SlotLedger long_session = short_session;
  long_session.airtime_us *= 10;
  long_session.idle_slots *= 10;
  const auto a =
      session_energy(model, short_session, {}, 0, false);
  const auto b = session_energy(model, long_session, {}, 0, false);
  EXPECT_NEAR(b.reader_mj, 10.0 * a.reader_mj, 1e-9);
  EXPECT_DOUBLE_EQ(a.tag_total_mj, 0.0) << "passive tags draw no budget";
}

TEST(Energy, ActiveTagsPayForHashing) {
  EnergyModel model;
  SlotLedger slots;
  slots.collision_slots = 1000;
  slots.airtime_us = 1000 * 400;
  tags::TagCostLedger few_hashes{100, 100000, 5000, 0};
  tags::TagCostLedger many_hashes{100000, 100000, 5000, 0};
  const auto cheap = session_energy(model, slots, few_hashes, 1000, true);
  const auto costly = session_energy(model, slots, many_hashes, 1000, true);
  EXPECT_GT(costly.tag_total_mj, cheap.tag_total_mj);
  EXPECT_NEAR(costly.tag_total_mj - cheap.tag_total_mj,
              model.tag_hash_uj * (100000 - 100) / 1000.0, 1e-9);
  EXPECT_GT(cheap.tag_mean_uj, 0.0);
}

TEST(Energy, EndToEndPreloadedVsRehash) {
  // The Section 4.5 claim in energy terms: per-round rehashing costs active
  // tags measurably more than preloaded codes for the same slot schedule.
  const auto pop = tags::TagPopulation::generate(300, 1);
  const stats::AccuracyRequirement req{0.2, 0.2};

  chan::DeviceChannel preloaded(pop.ids(), chan::DeviceKind::kPet);
  core::PetConfig preloaded_config;
  (void)core::PetEstimator(preloaded_config, req)
      .estimate_with_rounds(preloaded, 100, 2);

  chan::DeviceChannelConfig rehash_device;
  rehash_device.pet_mode = PetTagDevice::CodeMode::kPerRound;
  chan::DeviceChannel rehash(pop.ids(), chan::DeviceKind::kPet,
                             rehash_device);
  core::PetConfig rehash_config;
  rehash_config.tags_rehash = true;
  (void)core::PetEstimator(rehash_config, req)
      .estimate_with_rounds(rehash, 100, 2);

  const EnergyModel model;
  const auto ep = session_energy(model, preloaded.ledger(),
                                 preloaded.total_tag_cost(), 300, true);
  const auto er = session_energy(model, rehash.ledger(),
                                 rehash.total_tag_cost(), 300, true);
  EXPECT_GT(er.tag_mean_uj, ep.tag_mean_uj);
}

}  // namespace
}  // namespace pet::sim
