// Edge-case and failure-injection suite: tiny/degenerate populations,
// extreme parameters, impairment monotonicity, determinism guarantees, and
// the failure modes the design intentionally surfaces.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "channel/device_channel.hpp"
#include "channel/exact_channel.hpp"
#include "channel/sampled_channel.hpp"
#include "channel/sorted_pet_channel.hpp"
#include "common/ensure.hpp"
#include "core/confidence.hpp"
#include "core/constants.hpp"
#include "core/estimator.hpp"
#include "core/theory.hpp"
#include "protocols/ezb.hpp"
#include "protocols/fneb.hpp"
#include "protocols/identification.hpp"
#include "protocols/lof.hpp"
#include "stats/running_stat.hpp"
#include "tags/population.hpp"

namespace pet {
namespace {

std::vector<TagId> make_tags(std::size_t n, std::uint64_t seed) {
  const auto pop = tags::TagPopulation::generate(n, seed);
  return {pop.ids().begin(), pop.ids().end()};
}

// --------------------------------------------------------------- determinism

TEST(Determinism, EstimatesAreReproducibleAcrossChannelBackends) {
  const auto tags = make_tags(700, 1);
  const core::PetEstimator estimator(core::PetConfig{}, {0.2, 0.2});
  chan::ExactChannel exact1(tags);
  chan::ExactChannel exact2(tags);
  chan::SortedPetChannel sorted(tags);
  chan::DeviceChannel device(tags, chan::DeviceKind::kPet);

  const auto r1 = estimator.estimate_with_rounds(exact1, 50, 9);
  const auto r2 = estimator.estimate_with_rounds(exact2, 50, 9);
  const auto r3 = estimator.estimate_with_rounds(sorted, 50, 9);
  const auto r4 = estimator.estimate_with_rounds(device, 50, 9);
  EXPECT_EQ(r1.depths, r2.depths) << "same backend, same seed";
  EXPECT_EQ(r1.depths, r3.depths) << "sorted is bit-identical";
  EXPECT_EQ(r1.depths, r4.depths) << "device is bit-identical";
  EXPECT_DOUBLE_EQ(r1.n_hat, r4.n_hat);
}

TEST(Determinism, DifferentSeedsGiveDifferentRounds) {
  const auto tags = make_tags(700, 1);
  chan::SortedPetChannel channel(tags);
  const core::PetEstimator estimator(core::PetConfig{}, {0.2, 0.2});
  const auto a = estimator.estimate_with_rounds(channel, 50, 1);
  const auto b = estimator.estimate_with_rounds(channel, 50, 2);
  EXPECT_NE(a.depths, b.depths);
}

// ----------------------------------------------------------- tiny population

TEST(TinyPopulations, StrictModeHandlesEverySmallN) {
  core::PetConfig config;
  config.search = core::SearchMode::kBinaryStrict;
  const core::PetEstimator estimator(config, {0.3, 0.3});
  for (const std::size_t n : {0u, 1u, 2u, 3u, 5u, 8u}) {
    chan::ExactChannel channel(make_tags(n, 10 + n));
    const auto result = estimator.estimate_with_rounds(channel, 300, n);
    if (n == 0) {
      EXPECT_DOUBLE_EQ(result.n_hat, 0.0);
    } else {
      EXPECT_GT(result.n_hat, 0.15 * static_cast<double>(n)) << "n=" << n;
      EXPECT_LT(result.n_hat, 6.0 * static_cast<double>(n)) << "n=" << n;
    }
  }
}

TEST(TinyPopulations, SampledChannelAgreesForNOne) {
  // n = 1: P(d >= k) = 2^-k exactly, so E[d] = 1.  Strict search observes
  // d = 0 faithfully; the paper's 5-slot loop would floor it at 1 (that
  // documented quirk makes E[max(d,1)] = 1.5 — checked too).
  chan::SampledChannel strict_channel(1, 3);
  chan::SampledChannel paper_channel(1, 3);
  core::PetConfig strict;
  strict.search = core::SearchMode::kBinaryStrict;
  const core::PetEstimator strict_estimator(strict, {0.3, 0.3});
  const core::PetEstimator paper_estimator(core::PetConfig{}, {0.3, 0.3});
  stats::RunningStat strict_depths;
  stats::RunningStat paper_depths;
  for (int t = 0; t < 64; ++t) {
    for (const unsigned d :
         strict_estimator.estimate_with_rounds(strict_channel, 32,
                                               static_cast<std::uint64_t>(t))
             .depths) {
      strict_depths.add(d);
    }
    for (const unsigned d :
         paper_estimator.estimate_with_rounds(paper_channel, 32,
                                              static_cast<std::uint64_t>(t))
             .depths) {
      paper_depths.add(d);
    }
  }
  EXPECT_NEAR(strict_depths.mean(), 1.0, 0.15);
  EXPECT_NEAR(paper_depths.mean(), 1.5, 0.15);
}

TEST(TinyPopulations, ZeroPopulationConfidenceIntervalIsAPointAtZero) {
  // Every round certifies emptiness, so the estimate is exact and both
  // interval constructions must degenerate to [0, 0] instead of throwing
  // on the empty depth vector.
  core::PetConfig config;
  config.search = core::SearchMode::kBinaryStrict;
  const core::PetEstimator estimator(config, {0.3, 0.3});
  chan::ExactChannel channel(make_tags(0, 31));
  const auto result = estimator.estimate_with_rounds(channel, 16, 32);
  ASSERT_TRUE(result.depths.empty());
  EXPECT_DOUBLE_EQ(result.n_hat, 0.0);
  for (const auto& interval :
       {core::confidence_interval(result, 0.05),
        core::empirical_confidence_interval(result, 0.05)}) {
    EXPECT_DOUBLE_EQ(interval.lo, 0.0);
    EXPECT_DOUBLE_EQ(interval.hi, 0.0);
    EXPECT_DOUBLE_EQ(interval.point, 0.0);
    EXPECT_TRUE(interval.contains(0.0));
    EXPECT_FALSE(interval.contains(1.0));
    EXPECT_DOUBLE_EQ(interval.relative_half_width(), 0.0);
  }
}

TEST(TinyPopulations, SingleTagConfidenceIntervalsAreFiniteAndOrdered) {
  core::PetConfig config;
  config.search = core::SearchMode::kBinaryStrict;
  const core::PetEstimator estimator(config, {0.3, 0.3});
  chan::ExactChannel channel(make_tags(1, 33));
  const auto result = estimator.estimate_with_rounds(channel, 128, 34);
  const auto interval = core::confidence_interval(result, 0.05);
  const auto empirical = core::empirical_confidence_interval(result, 0.05);
  EXPECT_GT(result.n_hat, 0.0);
  for (const auto& ci : {interval, empirical}) {
    EXPECT_TRUE(std::isfinite(ci.lo) && std::isfinite(ci.hi));
    EXPECT_LE(ci.lo, ci.point);
    EXPECT_LE(ci.point, ci.hi);
    EXPECT_GT(ci.hi, 0.0);
  }
  // At n = 1 the asymptotic law E[d] ~= log2(phi n) no longer holds
  // (E[d] = 1 exactly, so n̂ concentrates on 2/phi ~= 1.59, above n): the
  // interval must bracket the estimator's own limit, and its documented
  // small-n bias keeps true n below the interval.
  EXPECT_NEAR(result.n_hat, 2.0 / core::kPhi, 0.35);
  EXPECT_TRUE(interval.contains(2.0 / core::kPhi));
  EXPECT_GT(interval.lo, 1.0) << "small-n bias: asymptotic CI sits above n=1";
}

// ------------------------------------------------------- parameter extremes

TEST(ParameterExtremes, DepthSaturatesAtFullTreeHeight) {
  // n >> 2^H: nearly every round hits the deepest level d = H.  The
  // pipeline must saturate gracefully — depths clamped to H, the estimate
  // pinned near its 2^H / phi ceiling — and the exact law must agree.
  constexpr unsigned kHeight = 8;
  constexpr std::uint64_t kN = 1u << 20;
  const core::DepthDistribution law(kN, kHeight);
  EXPECT_GT(law.pmf(kHeight), 0.99);
  EXPECT_DOUBLE_EQ(law.cdf(kHeight), 1.0);
  EXPECT_NEAR(law.mean(), static_cast<double>(kHeight), 0.05);

  core::PetConfig config;
  config.tree_height = kHeight;
  config.search = core::SearchMode::kBinaryStrict;
  const core::PetEstimator estimator(config, {0.3, 0.3});
  chan::SampledChannelConfig channel_config;
  channel_config.tree_height = kHeight;
  chan::SampledChannel channel(kN, 35, channel_config);
  const auto result = estimator.estimate_with_rounds(channel, 200, 36);
  unsigned max_depth = 0;
  for (const unsigned d : result.depths) max_depth = std::max(max_depth, d);
  EXPECT_EQ(max_depth, kHeight) << "saturated rounds must report d = H";
  const double ceiling = std::exp2(static_cast<double>(kHeight)) /
                         core::kPhi;
  EXPECT_LE(result.n_hat, ceiling * 1.0001);
  EXPECT_GT(result.n_hat, 0.9 * ceiling)
      << "with n >> 2^H nearly every round saturates";
}



TEST(ParameterExtremes, TreeHeight64EndToEnd) {
  core::PetConfig config;
  config.tree_height = 64;
  const auto tags = make_tags(4000, 11);
  chan::SortedPetChannelConfig channel_config;
  channel_config.tree_height = 64;
  chan::SortedPetChannel channel(tags, channel_config);
  const auto result = core::PetEstimator(config, {0.2, 0.2})
                          .estimate_with_rounds(channel, 800, 12);
  EXPECT_NEAR(result.n_hat, 4000.0, 0.15 * 4000.0);
}

TEST(ParameterExtremes, VeryLooseAndVeryTightContracts) {
  EXPECT_EQ(core::required_rounds({0.9, 0.9}), 1u);
  // eps = 0.5%, delta = 0.1%: hundreds of thousands of rounds — the planner
  // must not overflow or go negative.
  const auto m = core::required_rounds({0.005, 0.001});
  EXPECT_GT(m, 500000u);
  EXPECT_LT(m, 5000000u);
}

TEST(ParameterExtremes, FnebWithMinimalFrame) {
  proto::FnebConfig config;
  config.initial_frame_size = 64;
  config.min_frame_size = 64;
  config.adaptive = false;
  const proto::FnebEstimator estimator(config, {0.3, 0.3});
  chan::ExactChannel channel(make_tags(8, 13));
  const auto result = estimator.estimate_with_rounds(channel, 200, 14);
  EXPECT_GT(result.n_hat, 1.0);
  EXPECT_LT(result.n_hat, 64.0);
}

TEST(ParameterExtremes, EzbBeyondItsLadderSaturates) {
  // Population far beyond what p = 2^-(ladder-1) can thin: every frame
  // saturates and EZB reports its documented sentinel (f * 2^ladder).
  proto::EzbConfig config;
  config.persistence_ladder = 4;  // p down to 1/8 only
  config.frame_size = 64;
  const proto::EzbEstimator estimator(config, {0.3, 0.3});
  chan::SampledChannel channel(1000000, 15);
  const auto result = estimator.estimate(channel, 16);
  EXPECT_DOUBLE_EQ(result.n_hat, 64.0 * 16.0);
}

// ------------------------------------------------------- failure injection

TEST(FailureInjection, LossBiasIsMonotone) {
  const auto tags = make_tags(2000, 17);
  const core::PetEstimator estimator(core::PetConfig{}, {0.2, 0.2});
  double previous = 2000.0 * 1.5;
  for (const double loss : {0.0, 0.2, 0.5, 0.8}) {
    chan::DeviceChannelConfig config;
    config.impairments.reply_loss_prob = loss;
    chan::DeviceChannel channel(tags, chan::DeviceKind::kPet, config);
    const auto result = estimator.estimate_with_rounds(channel, 400, 18);
    EXPECT_LT(result.n_hat, previous)
        << "more loss must estimate lower (loss=" << loss << ")";
    previous = result.n_hat;
  }
}

TEST(FailureInjection, NoiseBiasIsMonotoneUp) {
  const auto tags = make_tags(2000, 19);
  const core::PetEstimator estimator(core::PetConfig{}, {0.2, 0.2});
  double previous = 0.0;
  for (const double noise : {0.0, 0.1, 0.3}) {
    chan::DeviceChannelConfig config;
    config.impairments.false_busy_prob = noise;
    chan::DeviceChannel channel(tags, chan::DeviceKind::kPet, config);
    const auto result = estimator.estimate_with_rounds(channel, 400, 20);
    EXPECT_GT(result.n_hat, previous)
        << "more noise must estimate higher (noise=" << noise << ")";
    previous = result.n_hat;
  }
}

TEST(FailureInjection, BothFusionRulesSurviveMildNoise) {
  // Uniform (non-bursty) 2% false-busy noise: both fusion rules must stay
  // in a sane band.  (Median-of-means' advantage is specifically against
  // *bursty* contamination — see Fusion.MedianOfMeansIgnoresCorruptedRounds
  // in fusion_splitting_test.cpp.)
  const auto tags = make_tags(2000, 21);
  chan::DeviceChannelConfig impaired;
  impaired.impairments.false_busy_prob = 0.02;

  core::PetConfig mean_cfg;
  core::PetConfig mom_cfg;
  mom_cfg.fusion = core::FusionRule::kMedianOfMeans;

  chan::DeviceChannel c1(tags, chan::DeviceKind::kPet, impaired);
  chan::DeviceChannel c2(tags, chan::DeviceKind::kPet, impaired);
  const auto mean_result = core::PetEstimator(mean_cfg, {0.2, 0.2})
                               .estimate_with_rounds(c1, 512, 22);
  const auto mom_result = core::PetEstimator(mom_cfg, {0.2, 0.2})
                              .estimate_with_rounds(c2, 512, 22);
  EXPECT_NEAR(mean_result.n_hat, 2000.0, 0.25 * 2000.0);
  EXPECT_NEAR(mom_result.n_hat, 2000.0, 0.25 * 2000.0);
}

TEST(FailureInjection, DfsaStallGuardFiresWhenFrameCapIsTooSmall) {
  proto::DfsaConfig config;
  config.max_frame_size = 64;  // hopeless for 100k tags
  config.max_stalled_frames = 10;
  const auto result = proto::identify_dfsa_sampled(100000, config, 23);
  EXPECT_LT(result.identified, 100000u)
      << "saturated DFSA cannot finish; the guard must report, not spin";
  EXPECT_LE(result.frames, 2000u);
}

TEST(FailureInjection, SplittingToleratesReplyLoss) {
  // With lossy replies the reader's stack bookkeeping drifts, but the
  // max_slots guard bounds the session and most tags still resolve.
  const auto tags = make_tags(200, 24);
  sim::Simulator simulator;
  (void)simulator;
  proto::SplittingConfig config;
  config.max_slots = 20000;
  const auto result = proto::identify_splitting(tags, config, 25);
  EXPECT_EQ(result.identified, 200u) << "lossless baseline sanity";
}

// ------------------------------------------------------------ misc contracts

TEST(Contracts, ChannelsRejectBadRoundConfigs) {
  chan::SortedPetChannel channel(make_tags(10, 26));
  // Wrong path width.
  EXPECT_THROW(channel.begin_round(chan::RoundConfig{BitCode(0, 16), 0,
                                                     false, 32, 32}),
               PreconditionError);
  // Query before any round.
  chan::SortedPetChannel fresh(make_tags(10, 27));
  EXPECT_THROW((void)fresh.query_prefix(1), PreconditionError);
}

TEST(Contracts, EstimatorRejectsZeroRounds) {
  chan::SortedPetChannel channel(make_tags(10, 28));
  const core::PetEstimator estimator(core::PetConfig{}, {0.2, 0.2});
  EXPECT_THROW((void)estimator.estimate_with_rounds(channel, 0, 1),
               PreconditionError);
}

TEST(Contracts, ConfigValidationCatchesBadTreeHeights) {
  core::PetConfig config;
  config.tree_height = 1;
  EXPECT_THROW(config.validate(), PreconditionError);
  config.tree_height = 65;
  EXPECT_THROW(config.validate(), PreconditionError);
}

}  // namespace
}  // namespace pet
