// Tests for src/multireader: fused probing, duplicate-insensitivity under
// overlapping coverage, and mobile-tag robustness (Section 4.6.3).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "channel/exact_channel.hpp"
#include "channel/sorted_pet_channel.hpp"
#include "common/ensure.hpp"
#include "core/estimator.hpp"
#include "multireader/controller.hpp"
#include "tags/mobility.hpp"
#include "tags/population.hpp"

namespace pet::multi {
namespace {

std::unique_ptr<chan::PrefixChannel> zone_channel(std::vector<TagId> tags) {
  return std::make_unique<chan::ExactChannel>(std::move(tags));
}

/// Build a controller over the zones of a ZoneMap.
MultiReaderController controller_for(const tags::ZoneMap& zones) {
  std::vector<std::unique_ptr<chan::PrefixChannel>> readers;
  for (std::size_t z = 0; z < zones.zone_count(); ++z) {
    readers.push_back(zone_channel(zones.audible_in(z)));
  }
  return MultiReaderController(std::move(readers));
}

TEST(MultiReader, RejectsEmptyReaderSet) {
  EXPECT_THROW(
      MultiReaderController(
          std::vector<std::unique_ptr<chan::PrefixChannel>>{}),
      PreconditionError);
}

TEST(MultiReader, FusedBusyPatternEqualsSingleReaderUnion) {
  const auto pop = tags::TagPopulation::generate(3000, 1);
  tags::ZoneMap zones(4, 2);
  zones.scatter(pop);
  zones.add_overlap(0.3);  // duplicates across neighbouring zones

  auto fused = controller_for(zones);
  chan::ExactChannel single(
      {pop.ids().begin(), pop.ids().end()});  // one reader hears everyone

  for (std::uint64_t r = 0; r < 15; ++r) {
    const BitCode path =
        rng::uniform_code(rng::HashKind::kMix64, r, 0x700dULL, 32);
    const chan::RoundConfig round{path, 0, false, 32, 32};
    fused.begin_round(round);
    single.begin_round(round);
    for (unsigned len = 0; len <= 32; ++len) {
      EXPECT_EQ(fused.query_prefix(len), single.query_prefix(len))
          << "round " << r << " len " << len;
    }
  }
}

TEST(MultiReader, OverlapDoesNotInflateTheEstimate) {
  // The Section 4.6.3 claim: a tag heard by several readers contributes the
  // same as one response.  Compare estimates with and without overlap over
  // the same population.
  const auto pop = tags::TagPopulation::generate(8000, 3);

  tags::ZoneMap no_overlap(4, 4);
  no_overlap.scatter(pop);
  tags::ZoneMap heavy_overlap(4, 4);
  heavy_overlap.scatter(pop);
  heavy_overlap.add_overlap(1.0);  // every tag audible in two zones

  auto fused_a = controller_for(no_overlap);
  auto fused_b = controller_for(heavy_overlap);

  const core::PetEstimator estimator(core::PetConfig{}, {0.1, 0.05});
  const auto ra = estimator.estimate_with_rounds(fused_a, 600, 7);
  const auto rb = estimator.estimate_with_rounds(fused_b, 600, 7);
  EXPECT_EQ(ra.depths, rb.depths)
      << "identical paths + duplicate-insensitive fusion = identical rounds";
  EXPECT_DOUBLE_EQ(ra.n_hat, rb.n_hat);
  EXPECT_NEAR(ra.n_hat, 8000.0, 0.1 * 8000.0);
}

TEST(MultiReader, ControllerLedgerCountsFusedSlots) {
  const auto pop = tags::TagPopulation::generate(100, 5);
  tags::ZoneMap zones(3, 6);
  zones.scatter(pop);
  auto fused = controller_for(zones);

  const core::PetEstimator estimator(core::PetConfig{}, {0.1, 0.05});
  const auto result = estimator.estimate_with_rounds(fused, 40, 8);
  EXPECT_EQ(result.ledger.total_slots(), 200u)
      << "5 slots/round regardless of reader count";
}

TEST(MultiReader, ZoneLedgersTrackPerReaderAirtime) {
  const auto pop = tags::TagPopulation::generate(100, 5);
  tags::ZoneMap zones(3, 6);
  zones.scatter(pop);
  auto fused = controller_for(zones);
  const core::PetEstimator estimator(core::PetConfig{}, {0.1, 0.05});
  (void)estimator.estimate_with_rounds(fused, 10, 9);
  for (std::size_t z = 0; z < 3; ++z) {
    EXPECT_EQ(fused.zone_ledger(z).total_slots(), 50u)
        << "every reader probes every slot";
  }
  EXPECT_THROW(fused.zone_ledger(3), PreconditionError);
}

TEST(MultiReader, MobileTagsAreStillCountedOnce) {
  // Tags move between zones across estimation rounds; the controller keeps
  // estimating the same distinct count.
  const auto pop = tags::TagPopulation::generate(5000, 10);
  tags::ZoneMap zones(5, 11);
  zones.scatter(pop);

  const core::PetEstimator estimator(core::PetConfig{}, {0.1, 0.05});
  for (int epoch = 0; epoch < 3; ++epoch) {
    auto fused = controller_for(zones);
    const auto result = estimator.estimate_with_rounds(
        fused, 600, 20 + static_cast<std::uint64_t>(epoch));
    EXPECT_NEAR(result.n_hat, 5000.0, 0.12 * 5000.0) << "epoch " << epoch;
    zones.step(0.4);  // 40% of tags wander before the next estimate
  }
}

TEST(MultiReader, SingleReaderDegeneratesToPlainChannel) {
  const auto pop = tags::TagPopulation::generate(2000, 12);
  std::vector<std::unique_ptr<chan::PrefixChannel>> readers;
  readers.push_back(zone_channel({pop.ids().begin(), pop.ids().end()}));
  MultiReaderController fused(std::move(readers));
  EXPECT_EQ(fused.reader_count(), 1u);

  chan::ExactChannel direct({pop.ids().begin(), pop.ids().end()});
  const core::PetEstimator estimator(core::PetConfig{}, {0.1, 0.05});
  const auto rf = estimator.estimate_with_rounds(fused, 100, 13);
  const auto rd = estimator.estimate_with_rounds(direct, 100, 13);
  EXPECT_EQ(rf.depths, rd.depths);
  EXPECT_DOUBLE_EQ(rf.n_hat, rd.n_hat);
}

}  // namespace
}  // namespace pet::multi
