// Property-based suites: parameterized sweeps over population sizes, tree
// heights, search modes, and hash families, checking the invariants that
// make PET correct rather than specific outputs.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "channel/exact_channel.hpp"
#include "channel/sampled_channel.hpp"
#include "channel/sorted_pet_channel.hpp"
#include "common/bitcode.hpp"
#include "core/constants.hpp"
#include "core/estimator.hpp"
#include "core/theory.hpp"
#include "rng/hash_family.hpp"
#include "rng/prng.hpp"
#include "runtime/json.hpp"
#include "stats/running_stat.hpp"
#include "tags/population.hpp"
#include "verify/benchjson.hpp"

namespace pet {
namespace {

std::vector<TagId> make_tags(std::size_t n, std::uint64_t seed) {
  const auto pop = tags::TagPopulation::generate(n, seed);
  return {pop.ids().begin(), pop.ids().end()};
}

// ---------------------------------------------------------------------------
// Invariant 1: the busy predicate along any estimating path is monotone and
// its boundary equals the brute-force max-lcp, for every (n, H, hash).

using ChannelCase = std::tuple<std::size_t, unsigned, rng::HashKind>;

class ChannelInvariants : public ::testing::TestWithParam<ChannelCase> {};

TEST_P(ChannelInvariants, BusyBoundaryEqualsMaxLcp) {
  const auto [n, h, hash] = GetParam();
  const auto tags = make_tags(n, 40 + n);
  chan::ExactChannelConfig config;
  config.tree_height = h;
  config.hash = hash;
  chan::ExactChannel channel(tags, config);

  for (std::uint64_t r = 0; r < 8; ++r) {
    const BitCode path = rng::uniform_code(rng::HashKind::kMix64,
                                           r * 1337 + h, 0x1ceULL, h);
    unsigned expected = 0;
    for (const TagId id : tags) {
      expected = std::max(
          expected, rng::uniform_code(hash, config.manufacturing_seed, id, h)
                        .common_prefix_len(path));
    }
    channel.begin_round(chan::RoundConfig{path, 0, false, h, h});
    bool previous = true;
    for (unsigned len = 0; len <= h; ++len) {
      const bool busy = channel.query_prefix(len);
      EXPECT_LE(busy, previous) << "monotone violation at len " << len;
      EXPECT_EQ(busy, n > 0 && len <= expected)
          << "n=" << n << " H=" << h << " len=" << len;
      previous = busy;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ChannelInvariants,
    ::testing::Combine(::testing::Values<std::size_t>(0, 1, 2, 17, 256, 3000),
                       ::testing::Values(8u, 16u, 32u, 48u),
                       ::testing::Values(rng::HashKind::kMix64,
                                         rng::HashKind::kMd5)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_H" +
             std::to_string(std::get<1>(info.param)) + "_" +
             std::string(rng::to_string(std::get<2>(info.param)));
    });

// ---------------------------------------------------------------------------
// Invariant 2: all three search modes observe the same depth on the same
// channel state whenever d >= 1, for every population size.

class SearchAgreement : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SearchAgreement, ModesAgreeRoundByRound) {
  const std::size_t n = GetParam();
  const auto tags = make_tags(n, 50 + n);
  chan::SortedPetChannel a(tags);
  chan::SortedPetChannel b(tags);
  chan::SortedPetChannel c(tags);

  core::PetConfig linear;
  linear.search = core::SearchMode::kLinear;
  core::PetConfig paper;
  paper.search = core::SearchMode::kBinaryPaper;
  core::PetConfig strict;
  strict.search = core::SearchMode::kBinaryStrict;
  const stats::AccuracyRequirement req{0.2, 0.2};
  const core::PetEstimator el(linear, req);
  const core::PetEstimator ep(paper, req);
  const core::PetEstimator es(strict, req);

  for (std::uint64_t r = 0; r < 60; ++r) {
    const BitCode path =
        rng::uniform_code(rng::HashKind::kMix64, r, 0x700dULL, 32);
    const chan::RoundConfig round{path, 0, false, 32, 32};
    a.begin_round(round);
    b.begin_round(round);
    c.begin_round(round);
    const auto dl = el.run_round(a);
    const auto dp = ep.run_round(b);
    const auto ds = es.run_round(c);
    EXPECT_EQ(dl, ds) << "linear and strict are exact for all d";
    if (dl.has_value() && *dl >= 1) {
      ASSERT_TRUE(dp.has_value());
      EXPECT_EQ(*dp, *dl) << "paper mode exact whenever d >= 1";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SearchAgreement,
                         ::testing::Values<std::size_t>(0, 1, 3, 10, 100,
                                                        1000, 20000));

// ---------------------------------------------------------------------------
// Invariant 3: estimator consistency — over many runs the mean accuracy is
// ~1 and the normalized deviation shrinks like 1/sqrt(m) (Eq. 13).

class RoundScaling : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundScaling, DeviationShrinksAsSqrtRounds) {
  const std::uint64_t m = GetParam();
  const std::uint64_t n = 10000;
  chan::SampledChannel channel(n, 60 + m);
  const core::PetEstimator estimator(core::PetConfig{}, {0.2, 0.2});

  stats::RunningStat ratio;
  constexpr int kTrials = 60;
  for (int t = 0; t < kTrials; ++t) {
    const auto result =
        estimator.estimate_with_rounds(channel, m, static_cast<std::uint64_t>(t));
    ratio.add(result.n_hat / static_cast<double>(n));
  }
  // Predicted relative deviation: the delta method on n̂ = 2^dbar/phi gives
  // sigma_rel ~= ln2 * sigma(h) / sqrt(m).
  const double predicted = M_LN2 * core::kSigmaH / std::sqrt(static_cast<double>(m));
  EXPECT_NEAR(ratio.mean(), 1.0, 4.0 * predicted / std::sqrt(kTrials) + 0.05);
  EXPECT_NEAR(ratio.stddev(), predicted, 0.45 * predicted);
}

INSTANTIATE_TEST_SUITE_P(Rounds, RoundScaling,
                         ::testing::Values<std::uint64_t>(16, 64, 256, 1024));

// ---------------------------------------------------------------------------
// Invariant 4: scale invariance — the normalized accuracy statistics do not
// depend on n (Fig. 4 claim), across four decades.

class ScaleInvariance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScaleInvariance, NormalizedStatsAreScaleFree) {
  const std::uint64_t n = GetParam();
  chan::SampledChannel channel(n, 70);
  const core::PetEstimator estimator(core::PetConfig{}, {0.2, 0.2});
  stats::RunningStat ratio;
  for (int t = 0; t < 50; ++t) {
    ratio.add(estimator.estimate_with_rounds(channel, 64, static_cast<std::uint64_t>(t))
                  .n_hat /
              static_cast<double>(n));
  }
  // Fig. 4c: at m = 64 the normalized deviation is ~0.2 regardless of n.
  EXPECT_NEAR(ratio.mean(), 1.0, 0.12) << "n=" << n;
  EXPECT_NEAR(ratio.stddev(), M_LN2 * core::kSigmaH / 8.0, 0.08) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Decades, ScaleInvariance,
                         ::testing::Values<std::uint64_t>(1000, 10000, 100000,
                                                          1000000));

// ---------------------------------------------------------------------------
// Invariant 5: the depth distribution is invariant to the estimating path
// (any path is as good as any other) — exercised by comparing depth moments
// across disjoint path seeds on the same population.

TEST(PathInvariance, DepthMomentsAgreeAcrossPathFamilies) {
  const auto tags = make_tags(5000, 80);
  chan::SortedPetChannel channel(tags);
  const core::PetEstimator estimator(core::PetConfig{}, {0.2, 0.2});

  stats::RunningStat family_a;
  stats::RunningStat family_b;
  const auto ra = estimator.estimate_with_rounds(channel, 1500, 1);
  const auto rb = estimator.estimate_with_rounds(channel, 1500, 999);
  for (const unsigned d : ra.depths) family_a.add(d);
  for (const unsigned d : rb.depths) family_b.add(d);
  EXPECT_NEAR(family_a.mean(), family_b.mean(), 0.2);
  EXPECT_NEAR(family_a.stddev(), family_b.stddev(), 0.2);
  // And both match the theory for this n.
  const core::DepthDistribution dist(5000, 32);
  EXPECT_NEAR(family_a.mean(), dist.mean(), 0.2);
}

// ---------------------------------------------------------------------------
// Invariant 6: hash-family independence — the estimator's statistics do not
// depend on which uniform hash generates the codes.

class HashInvariance : public ::testing::TestWithParam<rng::HashKind> {};

TEST_P(HashInvariance, EstimateQualityIsHashAgnostic) {
  const rng::HashKind hash = GetParam();
  const auto tags = make_tags(8000, 90);
  chan::SortedPetChannelConfig config;
  config.hash = hash;
  chan::SortedPetChannel channel(tags, config);
  const core::PetEstimator estimator(core::PetConfig{}, {0.2, 0.2});
  const auto result = estimator.estimate_with_rounds(channel, 1200, 2);
  EXPECT_NEAR(result.n_hat, 8000.0, 0.1 * 8000.0)
      << rng::to_string(hash);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, HashInvariance,
                         ::testing::Values(rng::HashKind::kMix64,
                                           rng::HashKind::kMd5,
                                           rng::HashKind::kSha1),
                         [](const auto& info) {
                           return std::string(rng::to_string(info.param));
                         });

// ---------------------------------------------------------------------------
// Invariant 7: JSON string escaping round-trips every byte that can appear
// in a cell.  Seeded fuzz: random strings over the full byte range the
// artifacts may carry survive escape -> embed -> parse unchanged.

TEST(JsonProperty, EscapeRoundTripsSeededRandomStrings) {
  rng::Xoshiro256ss gen(0x95ca9e);
  for (int iteration = 0; iteration < 200; ++iteration) {
    std::string cell;
    const unsigned length = static_cast<unsigned>(gen() % 40);
    for (unsigned i = 0; i < length; ++i) {
      // Bytes 0x01..0x7f: control characters, quotes, backslashes, and
      // printable ASCII.  (NUL would truncate the std::string contract;
      // the artifacts never carry it.)
      cell += static_cast<char>(1 + gen() % 127);
    }
    runtime::BenchReport report("fuzz", 1);
    report.add_row(cell, {"k"}, {cell});
    const auto artifact = verify::parse_bench_json(report.to_json());
    ASSERT_EQ(artifact.rows.size(), 1u) << "iteration " << iteration;
    EXPECT_EQ(artifact.rows[0][0].second, cell) << "iteration " << iteration;
    EXPECT_EQ(artifact.rows[0][1].second, cell) << "iteration " << iteration;
  }
}

TEST(JsonProperty, NumbersNeverEmitNonFiniteTokens) {
  const double specials[] = {std::nan(""), -std::nan(""), HUGE_VAL, -HUGE_VAL};
  for (const double value : specials) {
    EXPECT_EQ(runtime::json_number(value, 6), "null");
  }
  EXPECT_EQ(runtime::json_number(2.5, 2), "2.50");
  EXPECT_EQ(runtime::json_number(-0.125, 3), "-0.125");
}

// ---------------------------------------------------------------------------
// Invariant 8: BitCode prefix operations agree with a naive string-based
// reference implementation for every width and seeded random pair.

TEST(BitCodeProperty, PrefixOpsMatchNaiveStringReference) {
  rng::Xoshiro256ss gen(0xb17c0de);
  for (int iteration = 0; iteration < 400; ++iteration) {
    const unsigned width = 1 + static_cast<unsigned>(gen() % 64);
    const std::uint64_t mask =
        width == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
    const BitCode a(gen() & mask, width);
    // Half the pairs share a long prefix so deep matches get exercised.
    std::uint64_t b_bits = gen() & mask;
    if (iteration % 2 == 0 && width > 2) {
      const unsigned keep = static_cast<unsigned>(gen() % width);
      const std::uint64_t low_mask =
          keep == 0 ? mask : (mask >> keep);
      b_bits = (a.value() & ~low_mask) | (b_bits & low_mask);
    }
    const BitCode b(b_bits, width);

    const std::string sa = a.to_string();
    const std::string sb = b.to_string();
    ASSERT_EQ(sa.size(), width);

    unsigned naive_lcp = 0;
    while (naive_lcp < width && sa[naive_lcp] == sb[naive_lcp]) ++naive_lcp;
    EXPECT_EQ(a.common_prefix_len(b), naive_lcp)
        << sa << " vs " << sb;

    for (const unsigned len :
         {0u, 1u, width / 2, naive_lcp, std::min(naive_lcp + 1, width),
          width}) {
      const bool naive_match = sa.compare(0, len, sb, 0, len) == 0;
      EXPECT_EQ(a.matches_prefix(b, len), naive_match)
          << sa << " vs " << sb << " len=" << len;
      EXPECT_EQ(a.prefix(len), BitCode::parse(sa.substr(0, len)))
          << sa << " len=" << len;
    }
  }
}

}  // namespace
}  // namespace pet
