// Unit tests for src/tags: populations, join/leave dynamics, zone mobility,
// and the Fig.-7 cost model.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/ensure.hpp"
#include "tags/cost_model.hpp"
#include "tags/mobility.hpp"
#include "tags/population.hpp"

namespace pet::tags {
namespace {

TEST(Population, GeneratesRequestedUniqueIds) {
  const auto pop = TagPopulation::generate(5000, 1);
  EXPECT_EQ(pop.size(), 5000u);
  std::unordered_set<std::uint64_t> seen;
  for (const TagId id : pop.ids()) seen.insert(to_underlying(id));
  EXPECT_EQ(seen.size(), 5000u);
}

TEST(Population, GenerationIsDeterministicInSeed) {
  const auto a = TagPopulation::generate(100, 7);
  const auto b = TagPopulation::generate(100, 7);
  const auto c = TagPopulation::generate(100, 8);
  ASSERT_EQ(a.size(), b.size());
  bool all_equal = true;
  bool differs_from_c = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    all_equal = all_equal && (a.ids()[i] == b.ids()[i]);
    differs_from_c = differs_from_c || !(a.ids()[i] == c.ids()[i]);
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(differs_from_c);
}

TEST(Population, JoinAndLeave) {
  TagPopulation pop;
  EXPECT_TRUE(pop.empty());
  EXPECT_TRUE(pop.join(TagId{5}));
  EXPECT_FALSE(pop.join(TagId{5})) << "duplicate join must be rejected";
  EXPECT_TRUE(pop.contains(TagId{5}));
  EXPECT_EQ(pop.size(), 1u);
  EXPECT_TRUE(pop.leave(TagId{5}));
  EXPECT_FALSE(pop.leave(TagId{5})) << "double leave must be rejected";
  EXPECT_TRUE(pop.empty());
}

TEST(Population, JoinFreshAvoidsCollisions) {
  auto pop = TagPopulation::generate(1000, 3);
  const auto fresh = pop.join_fresh(500, 4);
  EXPECT_EQ(fresh.size(), 500u);
  EXPECT_EQ(pop.size(), 1500u);
  for (const TagId id : fresh) EXPECT_TRUE(pop.contains(id));
}

TEST(Population, LeaveRandomRemovesExactCount) {
  auto pop = TagPopulation::generate(1000, 3);
  EXPECT_EQ(pop.leave_random(400, 9), 400u);
  EXPECT_EQ(pop.size(), 600u);
  // Removing more than remain drains the population.
  EXPECT_EQ(pop.leave_random(10000, 10), 600u);
  EXPECT_TRUE(pop.empty());
}

TEST(ZoneMap, ScatterCoversAllZones) {
  const auto pop = TagPopulation::generate(2000, 5);
  ZoneMap zones(4, 11);
  zones.scatter(pop);
  EXPECT_EQ(zones.distinct_tags(), 2000u);
  std::size_t covered = 0;
  std::size_t total = 0;
  for (std::size_t z = 0; z < 4; ++z) {
    const auto audible = zones.audible_in(z);
    total += audible.size();
    if (!audible.empty()) ++covered;
  }
  EXPECT_EQ(covered, 4u);
  EXPECT_EQ(total, 2000u) << "no overlap yet: zone lists partition the tags";
}

TEST(ZoneMap, OverlapDuplicatesSomeTags) {
  const auto pop = TagPopulation::generate(2000, 5);
  ZoneMap zones(4, 11);
  zones.scatter(pop);
  zones.add_overlap(0.25);
  std::size_t total = 0;
  for (std::size_t z = 0; z < 4; ++z) total += zones.audible_in(z).size();
  EXPECT_GT(total, 2000u);
  EXPECT_LT(total, 2000u + 2000u / 2);  // ~25% duplicated
  EXPECT_EQ(zones.distinct_tags(), 2000u)
      << "overlap must not change the distinct count";
}

TEST(ZoneMap, StepMovesRoughlyTheRequestedFraction) {
  const auto pop = TagPopulation::generate(4000, 6);
  ZoneMap zones(8, 13);
  zones.scatter(pop);
  const std::size_t moved = zones.step(0.3);
  EXPECT_NEAR(static_cast<double>(moved), 1200.0, 150.0);
  std::size_t total = 0;
  for (std::size_t z = 0; z < 8; ++z) total += zones.audible_in(z).size();
  EXPECT_EQ(total, 4000u) << "mobility conserves tags";
}

TEST(ZoneMap, SingleZoneNeverMoves) {
  const auto pop = TagPopulation::generate(100, 6);
  ZoneMap zones(1, 13);
  zones.scatter(pop);
  EXPECT_EQ(zones.step(1.0), 0u);
  EXPECT_EQ(zones.audible_in(0).size(), 100u);
}

TEST(CostModel, PetPreloadIsOneWordRegardlessOfRounds) {
  EXPECT_EQ(preload_memory_bits(ProtocolKind::kPet, 1), 32u);
  EXPECT_EQ(preload_memory_bits(ProtocolKind::kPet, 10000), 32u);
}

TEST(CostModel, BaselinesPreloadPerRound) {
  // Fig. 7: FNEB/LoF per-tag memory grows linearly in the round count.
  EXPECT_EQ(preload_memory_bits(ProtocolKind::kFneb, 100), 3200u);
  EXPECT_EQ(preload_memory_bits(ProtocolKind::kLof, 100), 3200u);
  EXPECT_EQ(preload_memory_bits(ProtocolKind::kFneb, 1000, 16), 16000u);
}

TEST(CostModel, ActiveTagHashOps) {
  EXPECT_EQ(hash_ops(ProtocolKind::kPet, 500), 0u);
  EXPECT_EQ(hash_ops(ProtocolKind::kFneb, 500), 500u);
  EXPECT_EQ(hash_ops(ProtocolKind::kLof, 500), 500u);
}

TEST(CostModel, CommandBitsPerEncoding) {
  // Section 4.6.2: 32-bit mask vs 5-bit mid vs 1-bit ack for H = 32.
  EXPECT_EQ(command_bits_per_query(CommandEncoding::kFullMask, 32), 32u);
  EXPECT_EQ(command_bits_per_query(CommandEncoding::kMidIndex, 32), 6u);
  EXPECT_EQ(command_bits_per_query(CommandEncoding::kMidIndex, 31), 5u);
  EXPECT_EQ(command_bits_per_query(CommandEncoding::kOneBitAck, 32), 1u);
}

TEST(CostModel, LedgerAccumulates) {
  TagCostLedger a{1, 2, 3, 4};
  const TagCostLedger b{10, 20, 30, 40};
  a += b;
  EXPECT_EQ(a.hash_evaluations, 11u);
  EXPECT_EQ(a.prefix_compares, 22u);
  EXPECT_EQ(a.responses_sent, 33u);
  EXPECT_EQ(a.command_bits_heard, 44u);
}

}  // namespace
}  // namespace pet::tags
