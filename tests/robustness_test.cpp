// The robustness subsystem end to end: fault injection (sim/faults.hpp via
// Medium/DeviceChannel), the hardened estimation pipeline
// (core::RobustPetEstimator), robust fusion, retry accounting, and the
// channel-health diagnostic — including the bit-for-bit replay guarantee
// every fault scenario carries.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "channel/device_channel.hpp"
#include "common/ensure.hpp"
#include "core/constants.hpp"
#include "core/estimator.hpp"
#include "core/fusion.hpp"
#include "core/robust_estimator.hpp"
#include "core/theory.hpp"
#include "multireader/controller.hpp"
#include "rng/prng.hpp"
#include "tags/population.hpp"

namespace pet {
namespace {

chan::DeviceChannelConfig lossy_device(double loss, std::uint64_t seed) {
  chan::DeviceChannelConfig config;
  config.manufacturing_seed = rng::derive_seed(seed, 1);
  config.impairments.reply_loss_prob = loss;
  config.impairments.seed = rng::derive_seed(seed, 2);
  return config;
}

TEST(RobustPetConfig, RejectsInconsistentVoting) {
  const stats::AccuracyRequirement req{0.1, 0.05};
  core::RobustPetConfig quorum_too_big;
  quorum_too_big.vote_reads = 3;
  quorum_too_big.vote_quorum = 4;
  EXPECT_THROW(core::RobustPetEstimator(quorum_too_big, req),
               PreconditionError);

  core::RobustPetConfig zero_reads;
  zero_reads.vote_reads = 0;
  EXPECT_THROW(core::RobustPetEstimator(zero_reads, req), PreconditionError);

  core::RobustPetConfig bad_alpha;
  bad_alpha.health_alpha = 1.0;
  EXPECT_THROW(core::RobustPetEstimator(bad_alpha, req), PreconditionError);
}

TEST(RobustPetConfig, UpgradesPlainMeanFusionToTrimmedMean) {
  const stats::AccuracyRequirement req{0.1, 0.05};
  core::RobustPetConfig config;  // base.fusion defaults to kGeometricMean
  core::RobustPetEstimator estimator(config, req);
  EXPECT_EQ(estimator.config().base.fusion, core::FusionRule::kTrimmedMean);

  core::RobustPetConfig mom;
  mom.base.fusion = core::FusionRule::kMedianOfMeans;
  core::RobustPetEstimator mom_estimator(mom, req);
  EXPECT_EQ(mom_estimator.config().base.fusion,
            core::FusionRule::kMedianOfMeans);
}

TEST(TrimmedMeanFusion, MatchesGeometricMeanWithoutTrim) {
  const std::vector<unsigned> depths{9, 10, 10, 11, 10, 9, 11, 10};
  EXPECT_DOUBLE_EQ(
      core::fuse_depths(depths, core::FusionRule::kTrimmedMean, 16, 0.0),
      core::fuse_depths(depths, core::FusionRule::kGeometricMean));
}

TEST(TrimmedMeanFusion, SingleCorruptedRoundCannotSwingTheEstimate) {
  // 19 clean rounds at depth 10, one round corrupted to the tree ceiling
  // by a noise burst.  The trim must delete the outlier entirely: the
  // corrupted sample fuses to *exactly* what the clean one does.
  const std::vector<unsigned> clean(20, 10);
  std::vector<unsigned> corrupted(19, 10);
  corrupted.push_back(32);
  const double plain_clean =
      core::fuse_depths(clean, core::FusionRule::kGeometricMean);
  const double plain =
      core::fuse_depths(corrupted, core::FusionRule::kGeometricMean);
  EXPECT_GT(plain, 2.0 * plain_clean) << "plain mean doubles the estimate";
  EXPECT_DOUBLE_EQ(
      core::fuse_depths(corrupted, core::FusionRule::kTrimmedMean, 16, 0.1),
      core::fuse_depths(clean, core::FusionRule::kTrimmedMean, 16, 0.1))
      << "trimmed mean shrugs the outlier off";
}

TEST(TrimmedMeanFusion, FullTrimIsTheMedianDepth) {
  // At f = 0.5 only the median depth survives, so any sample with the same
  // median fuses identically — the wild 30 is invisible.
  const std::vector<unsigned> depths{1, 2, 30, 2, 1, 2, 3};
  const std::vector<unsigned> all_median(7, 2);
  EXPECT_DOUBLE_EQ(
      core::fuse_depths(depths, core::FusionRule::kTrimmedMean, 16, 0.5),
      core::fuse_depths(all_median, core::FusionRule::kTrimmedMean, 16, 0.5));
}

TEST(TrimmedMeanFusion, CalibrationUndoesTheSkewOfTheDepthLaw) {
  // The depth law is right-skewed, so symmetric trimming lowers the sample
  // mean; reading the trimmed mean through Eq. (14) naively would land
  // ~11% low.  On a clean theoretical sample the calibrated trimmed mean
  // must agree with the plain geometric mean instead.
  const std::uint64_t n = 1000;
  const core::DepthDistribution dist(n, 32);
  rng::Xoshiro256ss gen(4242);
  std::vector<unsigned> depths(4000);
  for (auto& d : depths) d = dist.sample(gen);
  const double plain =
      core::fuse_depths(depths, core::FusionRule::kGeometricMean);
  const double trimmed =
      core::fuse_depths(depths, core::FusionRule::kTrimmedMean, 16, 0.1);
  EXPECT_NEAR(trimmed, plain, 0.05 * plain);
  EXPECT_NEAR(trimmed, static_cast<double>(n), 0.1 * static_cast<double>(n));
}

TEST(RobustPetEstimator, CleanChannelIsHealthyAndMatchesContract) {
  const std::uint64_t n = 500;
  const auto pop = tags::TagPopulation::generate(n, 11);
  const stats::AccuracyRequirement req{0.1, 0.05};
  core::RobustPetEstimator estimator(core::RobustPetConfig{}, req);
  chan::DeviceChannel channel(pop.ids(), chan::DeviceKind::kPet,
                              lossy_device(0.0, 21));
  const auto result = estimator.estimate(channel, 5);
  EXPECT_EQ(result.diagnostic.health, core::ChannelHealth::kHealthy);
  EXPECT_DOUBLE_EQ(result.diagnostic.widening, 1.0);
  EXPECT_NEAR(result.n_hat(), static_cast<double>(n), 0.1 * n);
  EXPECT_TRUE(result.interval.contains(static_cast<double>(n)));
  EXPECT_FALSE(result.retry_budget_exhausted);
}

TEST(RobustPetEstimator, VotingScrubsReplyLossThatBreaksVanilla) {
  const std::uint64_t n = 500;
  const auto pop = tags::TagPopulation::generate(n, 13);
  const stats::AccuracyRequirement req{0.1, 0.05};
  const double loss = 0.35;

  const core::PetEstimator vanilla(core::PetConfig{}, req);
  chan::DeviceChannel vanilla_channel(pop.ids(), chan::DeviceKind::kPet,
                                      lossy_device(loss, 31));
  const auto vanilla_result = vanilla.estimate(vanilla_channel, 5);

  // Loss-dominated channel and no noise floor: a busy read can only be
  // genuine, so the right vote is an OR over up to 5 reads (quorum 1).
  core::RobustPetConfig config;
  config.vote_reads = 5;
  config.vote_quorum = 1;
  core::RobustPetEstimator robust(config, req);
  chan::DeviceChannel robust_channel(pop.ids(), chan::DeviceKind::kPet,
                                     lossy_device(loss, 31));
  const auto robust_result = robust.estimate(robust_channel, 5);

  const double truth = static_cast<double>(n);
  EXPECT_LT(vanilla_result.n_hat, 0.8 * truth)
      << "reply loss biases vanilla PET low";
  EXPECT_NEAR(robust_result.n_hat(), truth, 0.15 * truth)
      << "k-of-m voting recovers the estimate";
  EXPECT_LT(std::abs(robust_result.n_hat() - truth),
            std::abs(vanilla_result.n_hat - truth));
  EXPECT_GT(robust_result.reread_slots, 0u);
  EXPECT_GT(robust_result.overturned_probes, 0u);
}

TEST(RobustPetEstimator, RetriesAreChargedToTheChannelLedger) {
  const auto pop = tags::TagPopulation::generate(300, 17);
  const stats::AccuracyRequirement req{0.1, 0.05};
  core::RobustPetEstimator estimator(core::RobustPetConfig{}, req);
  chan::DeviceChannel channel(pop.ids(), chan::DeviceKind::kPet,
                              lossy_device(0.2, 41));
  const auto result = estimator.estimate_with_rounds(channel, 64, 5);
  EXPECT_GT(result.reread_slots, 0u);
  EXPECT_EQ(result.base.ledger.retry_slots, result.reread_slots);
  // Re-reads are real slots: they are part of the total, tagged on top.
  EXPECT_GT(result.base.ledger.total_slots(), result.reread_slots);
}

TEST(RobustPetEstimator, RetryBudgetIsAHardCeiling) {
  const auto pop = tags::TagPopulation::generate(300, 17);
  const stats::AccuracyRequirement req{0.1, 0.05};
  core::RobustPetConfig config;
  config.retry_budget_slots = 5;
  core::RobustPetEstimator estimator(config, req);
  chan::DeviceChannel channel(pop.ids(), chan::DeviceKind::kPet,
                              lossy_device(0.2, 43));
  const auto result = estimator.estimate_with_rounds(channel, 64, 5);
  EXPECT_LE(result.reread_slots, 5u);
  EXPECT_TRUE(result.retry_budget_exhausted);
  EXPECT_EQ(result.base.ledger.retry_slots, result.reread_slots);
}

TEST(RobustPetEstimator, FlagsChannelWhoseDepthsDeviateFromTheory) {
  // Uniform iid loss merely mimics a smaller population — the depth sample
  // still matches theory at the (wrong) n̂, and no shape test can see it.
  // Bursty loss is different: rounds hit by a bad-state burst truncate
  // while clean rounds don't, and the resulting mixture is wider than any
  // theoretical depth law.  Voting is disabled so the corruption reaches
  // the sample unscrubbed: the KS diagnostic must notice on its own.
  const auto pop = tags::TagPopulation::generate(800, 19);
  const stats::AccuracyRequirement req{0.1, 0.05};
  core::RobustPetConfig config;
  config.vote_reads = 1;
  config.vote_quorum = 1;
  core::RobustPetEstimator estimator(config, req);
  auto device = lossy_device(0.0, 47);
  device.impairments.burst =
      sim::GilbertElliottParams{0.05, 0.15, 0.0, 1.0, false};
  chan::DeviceChannel channel(pop.ids(), chan::DeviceKind::kPet, device);
  const auto result = estimator.estimate(channel, 5);
  EXPECT_NE(result.diagnostic.health, core::ChannelHealth::kHealthy);
  EXPECT_GT(result.diagnostic.widening, 1.0);
  EXPECT_GT(result.diagnostic.ks_distance, result.diagnostic.ks_threshold);
  // The widened interval is honest where the point estimate is not.
  EXPECT_GT(result.interval.hi - result.interval.lo,
            0.2 * result.n_hat());
}

TEST(RobustPetEstimator, CertifiedEmptyRegionReportsZero) {
  const stats::AccuracyRequirement req{0.1, 0.05};
  core::RobustPetConfig config;
  config.base.search = core::SearchMode::kBinaryStrict;
  core::RobustPetEstimator estimator(config, req);
  chan::DeviceChannel channel({}, chan::DeviceKind::kPet,
                              lossy_device(0.0, 53));
  const auto result = estimator.estimate_with_rounds(channel, 16, 5);
  EXPECT_EQ(result.n_hat(), 0.0);
  EXPECT_EQ(result.interval.lo, 0.0);
  EXPECT_EQ(result.interval.hi, 0.0);
  EXPECT_EQ(result.diagnostic.health, core::ChannelHealth::kHealthy);
}

/// Acceptance criterion: a full fault cocktail — bursty loss, noise
/// transients, a mid-session reader crash, tag churn between rounds —
/// replays bit-for-bit from the same seeds: identical SlotLedger,
/// identical n̂.
TEST(RobustnessReplay, FaultScenarioReplaysBitForBit) {
  const auto pop = tags::TagPopulation::generate(400, 23);
  const stats::AccuracyRequirement req{0.1, 0.05};

  auto scenario = [&pop, &req] {
    chan::DeviceChannelConfig device;
    device.manufacturing_seed = 77;
    auto& imp = device.impairments;
    imp.seed = 88;
    imp.reply_loss_prob = 0.1;
    imp.burst = sim::GilbertElliottParams{0.02, 0.2, 0.0, 1.0, false};
    imp.noise_transient = sim::NoiseTransientParams{0.02, 0.3, 0.6, false};
    imp.script.outages.push_back(sim::ReaderOutage{50, 20});
    imp.script.churn.push_back(sim::ChurnEvent{100, 30, 0});
    imp.script.churn.push_back(sim::ChurnEvent{200, 0, 15});

    chan::DeviceChannel channel(pop.ids(), chan::DeviceKind::kPet, device);
    core::RobustPetEstimator estimator(core::RobustPetConfig{}, req);
    auto result = estimator.estimate_with_rounds(channel, 96, 5);
    return std::make_pair(std::move(result), channel.ledger());
  };

  const auto first = scenario();
  const auto second = scenario();
  EXPECT_EQ(first.second, second.second) << "identical SlotLedger";
  EXPECT_EQ(first.first.n_hat(), second.first.n_hat()) << "identical n̂";
  EXPECT_EQ(first.first.base.depths, second.first.base.depths);
  EXPECT_EQ(first.first.reread_slots, second.first.reread_slots);
  EXPECT_EQ(first.first.diagnostic.ks_distance,
            second.first.diagnostic.ks_distance);
  // The cocktail actually fired.
  EXPECT_GT(first.second.erased_replies, 0u);
  EXPECT_GT(first.second.outage_slots, 0u);
  EXPECT_GT(first.second.retry_slots, 0u);
}

TEST(MultiReaderRobustness, RobustPathRunsOverTheFusedChannel) {
  const auto pop = tags::TagPopulation::generate(400, 29);
  const stats::AccuracyRequirement req{0.1, 0.05};
  const std::span<const TagId> ids = pop.ids();
  const std::size_t half = ids.size() / 2;

  auto build = [&ids, half] {
    std::vector<std::unique_ptr<chan::PrefixChannel>> zones;
    zones.push_back(std::make_unique<chan::DeviceChannel>(
        ids.subspan(0, half), chan::DeviceKind::kPet, lossy_device(0.2, 61)));
    zones.push_back(std::make_unique<chan::DeviceChannel>(
        ids.subspan(half), chan::DeviceKind::kPet, lossy_device(0.2, 67)));
    return multi::MultiReaderController(std::move(zones));
  };

  core::RobustPetConfig config;
  config.vote_reads = 3;
  config.vote_quorum = 1;  // reply loss only: OR-vote the re-reads
  core::RobustPetEstimator estimator(config, req);
  auto controller = build();
  const auto result = estimator.estimate_with_rounds(controller, 96, 5);

  EXPECT_GT(result.reread_slots, 0u);
  EXPECT_EQ(controller.ledger().retry_slots, result.reread_slots)
      << "fused ledger carries the retry accounting";
  EXPECT_EQ(controller.zone_ledger(0).retry_slots, result.reread_slots)
      << "every zone burned the re-read slots too";
  EXPECT_NEAR(result.n_hat(), static_cast<double>(ids.size()),
              0.25 * static_cast<double>(ids.size()));

  auto replay = build();
  const auto again = estimator.estimate_with_rounds(replay, 96, 5);
  EXPECT_EQ(again.n_hat(), result.n_hat()) << "multi-reader replay";
}

}  // namespace
}  // namespace pet
