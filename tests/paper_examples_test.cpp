// Paper-fidelity suite: the worked examples printed in the paper,
// reconstructed bit for bit through the public API.
//
//  * Fig. 1 / Section 4.1: four tags coded 0001/0110/1011/1110, estimating
//    path 0011, gray node at height 2 (prefix depth 2);
//  * Fig. 3 / Section 4.4: sixteen tags on an H = 6 tree, path 000011 —
//    the basic algorithm takes five slots, the binary search takes two;
//  * Section 3: the (50 000, 5%, 1%) -> [47 500, 52 500] example;
//  * Section 4.2 constants and Table-3 slot arithmetic.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "channel/exact_channel.hpp"
#include "core/constants.hpp"
#include "core/estimator.hpp"
#include "core/planner.hpp"
#include "rng/hash_family.hpp"
#include "stats/accuracy.hpp"

namespace pet {
namespace {

/// Find a TagId whose preloaded `width`-bit code equals `code` under the
/// given channel configuration (brute force; codes are short).
TagId tag_with_code(const chan::ExactChannelConfig& config, BitCode code) {
  for (std::uint64_t id = 0;; ++id) {
    if (rng::uniform_code(config.hash, config.manufacturing_seed, id,
                          code.width()) == code) {
      return TagId{id};
    }
  }
}

std::vector<TagId> tags_with_codes(const chan::ExactChannelConfig& config,
                                   const std::vector<const char*>& codes) {
  std::vector<TagId> out;
  out.reserve(codes.size());
  for (const char* text : codes) {
    out.push_back(tag_with_code(config, BitCode::parse(text)));
  }
  return out;
}

TEST(PaperFig1, GrayNodeSitsAtHeightTwo) {
  chan::ExactChannelConfig config;
  config.tree_height = 4;
  const auto tags =
      tags_with_codes(config, {"0001", "0110", "1011", "1110"});
  chan::ExactChannel channel(tags, config);

  core::PetConfig pet;
  pet.tree_height = 4;
  pet.search = core::SearchMode::kLinear;
  const core::PetEstimator estimator(pet, {0.3, 0.3});

  channel.begin_round(
      chan::RoundConfig{BitCode::parse("0011"), 0, false, 4, 4});
  const auto depth = estimator.run_round(channel);
  ASSERT_TRUE(depth.has_value());
  EXPECT_EQ(*depth, 2u) << "prefix depth d = 2";
  EXPECT_EQ(to_gray_height(PrefixDepth{*depth}, 4).value, 2u)
      << "the paper's gray node A has height 2";
  // Algorithm 1 walked prefixes 0, 00, 001 -> 3 slots, last one idle.
  EXPECT_EQ(channel.ledger().total_slots(), 3u);
  EXPECT_EQ(channel.ledger().idle_slots, 1u);
}

/// The Fig. 3 population: 16 six-bit codes arranged so that exactly one
/// tag matches prefix 0000 (and it extends as 00000x), four match 00, four
/// match 01, eight start with 1.
std::vector<TagId> fig3_tags(const chan::ExactChannelConfig& config) {
  return tags_with_codes(
      config, {"000001", "001010", "001101", "001110",   // 00 group
               "010001", "010110", "011010", "011100",   // 01 group
               "100001", "100110", "101010", "101101",   // 1 group
               "110010", "110101", "111001", "111110"});
}

TEST(PaperFig3, BasicAlgorithmTakesFiveSlots) {
  chan::ExactChannelConfig config;
  config.tree_height = 6;
  chan::ExactChannel channel(fig3_tags(config), config);

  core::PetConfig pet;
  pet.tree_height = 6;
  pet.search = core::SearchMode::kLinear;
  const core::PetEstimator estimator(pet, {0.3, 0.3});

  channel.begin_round(
      chan::RoundConfig{BitCode::parse("000011"), 0, false, 6, 6});
  const auto depth = estimator.run_round(channel);
  ASSERT_TRUE(depth.has_value());
  EXPECT_EQ(*depth, 4u) << "busy through 0000, idle at 00001";
  EXPECT_EQ(channel.ledger().total_slots(), 5u)
      << "the paper: 'The entire process contains five time slots.'";
}

TEST(PaperFig3, BinarySearchTakesTwoSlots) {
  chan::ExactChannelConfig config;
  config.tree_height = 6;
  chan::ExactChannel channel(fig3_tags(config), config);

  core::PetConfig pet;
  pet.tree_height = 6;
  pet.search = core::SearchMode::kBinaryPaper;
  const core::PetEstimator estimator(pet, {0.3, 0.3});

  channel.begin_round(
      chan::RoundConfig{BitCode::parse("000011"), 0, false, 6, 6});
  const auto depth = estimator.run_round(channel);
  ASSERT_TRUE(depth.has_value());
  EXPECT_EQ(*depth, 4u);
  // Paper: probe mid = ceil((1+6)/2) = 4 (busy, a singleton), then
  // mid = ceil((4+6)/2) = 5 (idle) -> converged.  Two slots.
  EXPECT_EQ(channel.ledger().total_slots(), 2u)
      << "the paper: 'The entire process contains only two time slots.'";
  EXPECT_EQ(channel.ledger().singleton_slots, 1u)
      << "the 0000 probe hears exactly the one 000001 tag";
  EXPECT_EQ(channel.ledger().idle_slots, 1u);
}

TEST(PaperSection3, AccuracyExampleNumbers) {
  // "if the actual number ... is 50,000, and the accuracy requirement is
  // eps = 5% and delta = 1%, an accurate estimation approach is expected
  // to output ... within [47,500, 52,500] with more than 99% probability."
  const stats::AccuracyRequirement req{0.05, 0.01};
  EXPECT_DOUBLE_EQ(req.interval_lo(50000), 47500.0);
  EXPECT_DOUBLE_EQ(req.interval_hi(50000), 52500.0);
}

TEST(PaperSection42, HeadlineConstants) {
  EXPECT_NEAR(core::kPhi, 1.25941, 1e-5);
  EXPECT_NEAR(core::kSigmaH, 1.87271, 1e-5);
}

TEST(PaperSection41, H32AccommodatesFortyMillionTags) {
  // "H = 32 can accommodate n = 40,000,000 with p ~ 0.99": the white-leaf
  // fraction p = (1 - 2^-32)^n.
  const double p =
      std::exp(40000000.0 * std::log1p(-std::ldexp(1.0, -32)));
  EXPECT_GT(p, 0.99);
}

TEST(PaperTable3, FiveSlotsTimesRounds) {
  core::PetConfig config;
  const core::PetPlan p64 = core::plan(config, {0.2, 0.32});
  // Whatever the round count, the slot arithmetic is 5m at H = 32.
  EXPECT_EQ(p64.total_slots, p64.rounds * 5);
}

}  // namespace
}  // namespace pet
