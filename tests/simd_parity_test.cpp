// SIMD/scalar parity battery for the batch hashing kernels
// (src/rng/hash_simd.cpp): every dispatch tier must produce byte-identical
// uniform_code_batch output to the scalar loop — across widths, every tail
// length 0..4*lanes, unaligned buffers, and the degenerate counts around
// one vector's worth of ids.  The scalar loop itself is pinned to the
// element-wise uniform_code oracle by fastpath_test.cpp, so equality here
// transitively pins every tier to the public contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/simd.hpp"
#include "rng/hash_family.hpp"
#include "rng/hash_simd.hpp"
#include "rng/prng.hpp"
#include "tags/population.hpp"

namespace {

using namespace pet;

// Restores the process-wide SIMD cap on scope exit so a failing assertion
// cannot leak a pinned tier into later tests (same shape as FastPathGuard).
class SimdGuard {
 public:
  explicit SimdGuard(SimdTier cap) : prev_(simd_tier()) { set_simd(cap); }
  ~SimdGuard() { set_simd(prev_); }
  SimdGuard(const SimdGuard&) = delete;
  SimdGuard& operator=(const SimdGuard&) = delete;

 private:
  SimdTier prev_;
};

std::vector<TagId> make_ids(std::size_t n, std::uint64_t seed) {
  const auto pop = tags::TagPopulation::generate(n, seed);
  return {pop.ids().begin(), pop.ids().end()};
}

// Tiers above scalar, in dispatch-preference order.  A tier the host CPU
// lacks clamps to a lower one inside simd_tier(); the comparison below is
// then scalar-vs-scalar, which keeps the battery meaningful on every
// architecture while exercising all real tiers where they exist.
constexpr SimdTier kVectorTiers[] = {SimdTier::kNeon, SimdTier::kAvx2,
                                     SimdTier::kAvx512};

std::vector<std::uint64_t> batch_at_tier(SimdTier cap, rng::HashKind kind,
                                         std::uint64_t seed,
                                         const std::vector<TagId>& ids,
                                         unsigned width) {
  SimdGuard guard(cap);
  std::vector<std::uint64_t> out;
  rng::uniform_code_batch(kind, seed, ids, width, out);
  return out;
}

TEST(SimdParity, TierMetadataIsConsistent) {
  EXPECT_EQ(simd_lanes(SimdTier::kScalar), 1u);
  EXPECT_EQ(simd_lanes(SimdTier::kNeon), 2u);
  EXPECT_EQ(simd_lanes(SimdTier::kAvx2), 4u);
  EXPECT_EQ(simd_lanes(SimdTier::kAvx512), 8u);
  EXPECT_EQ(to_string(SimdTier::kScalar), "scalar");
  EXPECT_EQ(to_string(SimdTier::kNeon), "neon");
  EXPECT_EQ(to_string(SimdTier::kAvx2), "avx2");
  EXPECT_EQ(to_string(SimdTier::kAvx512), "avx512");
  // The active tier never exceeds what the CPU supports, whatever the cap.
  SimdGuard guard(SimdTier::kAvx512);
  EXPECT_LE(simd_tier(), detected_simd_tier());
}

TEST(SimdParity, SetSimdBoolRoundTrips) {
  const SimdTier before = simd_tier();
  set_simd(false);
  EXPECT_EQ(simd_tier(), SimdTier::kScalar);
  set_simd(true);
  EXPECT_EQ(simd_tier(), detected_simd_tier());
  set_simd(before);
}

// Seeded fuzz: random (n, width, seed) cases per tier, byte-compared to the
// scalar batch.  Mirrors the RadixSortMatchesStdSortFuzz shape.
TEST(SimdParity, FuzzAllTiersMatchScalar) {
  rng::SplitMix64 gen(0x51d5eedULL);
  for (const SimdTier tier : kVectorTiers) {
    unsigned active_lanes = 0;
    {
      SimdGuard guard(tier);
      active_lanes = simd_lanes(simd_tier());
    }
    SCOPED_TRACE(testing::Message()
                 << "tier cap " << to_string(tier) << " (active lanes "
                 << active_lanes << ")");
    for (int c = 0; c < 60; ++c) {
      const std::size_t n = static_cast<std::size_t>(gen() % 3000);
      const unsigned width = 1 + static_cast<unsigned>(gen() % 64);
      const std::uint64_t seed = gen();
      const auto ids = make_ids(n, gen());
      const auto scalar = batch_at_tier(SimdTier::kScalar,
                                        rng::HashKind::kMix64, seed, ids,
                                        width);
      const auto vector = batch_at_tier(tier, rng::HashKind::kMix64, seed,
                                        ids, width);
      ASSERT_EQ(vector, scalar) << "case " << c << " n=" << n
                                << " width=" << width << " seed=" << seed;
    }
  }
}

// Every tail length 0..4*lanes for every tier: the loop peels whole
// vectors, so each n in this range lands a different (vector count, tail
// length) pair, including tail == 0 and the all-tail n < lanes cases.
TEST(SimdParity, EveryTailLengthMatchesScalar) {
  rng::SplitMix64 gen(0x7a11ULL);
  for (const SimdTier tier : kVectorTiers) {
    unsigned lanes = 0;
    {
      SimdGuard guard(tier);
      lanes = simd_lanes(simd_tier());
    }
    for (std::size_t n = 0; n <= 4 * std::size_t{lanes}; ++n) {
      const std::uint64_t seed = gen();
      const auto ids = make_ids(n, 0xbeefULL + n);
      for (const unsigned width : {1u, 13u, 32u, 64u}) {
        const auto scalar = batch_at_tier(SimdTier::kScalar,
                                          rng::HashKind::kMix64, seed, ids,
                                          width);
        const auto vector = batch_at_tier(tier, rng::HashKind::kMix64, seed,
                                          ids, width);
        ASSERT_EQ(vector, scalar)
            << to_string(tier) << " n=" << n << " width=" << width;
      }
    }
  }
}

// n in {0, 1, lanes-1, lanes, lanes+1}: the boundary counts around one
// vector's worth of ids, where a peeling off-by-one would read or write
// past the batch.
TEST(SimdParity, VectorBoundaryCountsMatchScalar) {
  rng::SplitMix64 gen(0xb0daULL);
  for (const SimdTier tier : kVectorTiers) {
    unsigned lanes = 0;
    {
      SimdGuard guard(tier);
      lanes = simd_lanes(simd_tier());
    }
    const std::size_t counts[] = {0, 1, lanes - 1, lanes,
                                  std::size_t{lanes} + 1};
    for (const std::size_t n : counts) {
      const std::uint64_t seed = gen();
      const auto ids = make_ids(n, seed ^ 0x1d5ULL);
      const auto scalar = batch_at_tier(SimdTier::kScalar,
                                        rng::HashKind::kMix64, seed, ids, 32);
      const auto vector =
          batch_at_tier(tier, rng::HashKind::kMix64, seed, ids, 32);
      ASSERT_EQ(vector, scalar) << to_string(tier) << " n=" << n;
    }
  }
}

// Unaligned input and output: the kernels use unaligned loads/stores, so a
// span starting one word into an allocation (8-byte aligned, off every
// vector boundary) must hash identically.  This drives the internal kernel
// entry point directly to control the output pointer too.
TEST(SimdParity, UnalignedBuffersMatchOracle) {
  constexpr std::uint64_t kSeed = 0xa15ea5e5ULL;
  const std::uint64_t seed_mix = rng::mix64(kSeed ^ 0x9e3779b97f4a7c15ULL);
  const auto aligned_ids = make_ids(130, 0x0ddba11ULL);

  std::vector<std::uint64_t> id_storage(aligned_ids.size() + 1, 0);
  for (std::size_t i = 0; i < aligned_ids.size(); ++i) {
    id_storage[i + 1] = to_underlying(aligned_ids[i]);
  }
  std::vector<std::uint64_t> out_storage(aligned_ids.size() + 1, 0);

  for (const SimdTier tier : kVectorTiers) {
    SimdGuard guard(tier);
    for (const unsigned width : {7u, 32u, 64u}) {
      std::fill(out_storage.begin(), out_storage.end(), 0);
      const bool used_simd = rng::detail::mix64_code_batch_simd(
          seed_mix, id_storage.data() + 1, aligned_ids.size(), width,
          out_storage.data() + 1);
      if (!used_simd) {
        // Tier unavailable on this host/arch (e.g. a NEON cap on x86 clamps
        // below the detected tier but has no runnable kernel): the contract
        // is that nothing was written.
        for (const std::uint64_t word : out_storage) {
          ASSERT_EQ(word, 0u) << to_string(tier) << " width=" << width;
        }
        continue;
      }
      for (std::size_t i = 0; i < aligned_ids.size(); ++i) {
        ASSERT_EQ(out_storage[i + 1],
                  rng::uniform_code(rng::HashKind::kMix64, kSeed,
                                    aligned_ids[i], width)
                      .value())
            << to_string(tier) << " width=" << width << " i=" << i;
      }
    }
  }
}

// The digest-based families never dispatch through the SIMD tiers; pinning
// the tier must not perturb them.
TEST(SimdParity, DigestFamiliesUnaffectedByTier) {
  const auto ids = make_ids(33, 0xd16e57ULL);
  for (const rng::HashKind kind : {rng::HashKind::kMd5, rng::HashKind::kSha1}) {
    const auto want =
        batch_at_tier(SimdTier::kScalar, kind, 0x1234ULL, ids, 32);
    for (const SimdTier tier : kVectorTiers) {
      EXPECT_EQ(batch_at_tier(tier, kind, 0x1234ULL, ids, 32), want)
          << to_string(kind) << " at " << to_string(tier);
    }
  }
}

}  // namespace
