// Unit tests for the statistical conformance harness (src/verify): GoF
// primitives against known quantiles and against the oracle's own samples,
// the BENCH artifact parser/comparator, fault-replay determinism across
// thread counts, and the test-only phi mutation hook.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/ensure.hpp"

#include "core/constants.hpp"
#include "core/theory.hpp"
#include "rng/prng.hpp"
#include "runtime/json.hpp"
#include "runtime/trial_runner.hpp"
#include "verify/benchjson.hpp"
#include "verify/calibration.hpp"
#include "verify/conformance.hpp"
#include "verify/depth_sampling.hpp"
#include "verify/gof.hpp"

namespace pet {
namespace {

using verify::DepthCounts;

// ------------------------------------------------------------- primitives

TEST(Gof, ChiSquareCriticalMatchesTables) {
  // Wilson-Hilferty is accurate to ~1% at these dofs; reference values
  // from standard chi-square tables.
  EXPECT_NEAR(verify::chi_square_critical(10, 0.05), 18.307, 0.2);
  EXPECT_NEAR(verify::chi_square_critical(5, 0.01), 15.086, 0.2);
  EXPECT_NEAR(verify::chi_square_critical(30, 0.05), 43.773, 0.4);
  // Monotone in dof and in 1 - alpha.
  EXPECT_LT(verify::chi_square_critical(5, 0.05),
            verify::chi_square_critical(6, 0.05));
  EXPECT_LT(verify::chi_square_critical(5, 0.05),
            verify::chi_square_critical(5, 0.01));
}

TEST(Gof, KsCriticalIsTheDkwBound) {
  const double expected = std::sqrt(std::log(2.0 / 0.05) / (2.0 * 1000.0));
  EXPECT_NEAR(verify::ks_one_sample_critical(1000, 0.05), expected, 1e-12);
  EXPECT_LT(verify::ks_one_sample_critical(4000, 0.05),
            verify::ks_one_sample_critical(1000, 0.05));
}

TEST(Gof, BonferroniDividesTheFamilyLevel) {
  EXPECT_DOUBLE_EQ(verify::bonferroni_alpha(0.05, 10), 0.005);
  EXPECT_DOUBLE_EQ(verify::bonferroni_alpha(0.01, 1), 0.01);
}

// The decisive property: samples drawn from the oracle itself must be
// accepted; samples from a different population size must be rejected.
DepthCounts sample_oracle(std::uint64_t n, unsigned height,
                          std::uint64_t draws, std::uint64_t seed) {
  const core::DepthDistribution dist(n, height);
  rng::Xoshiro256ss gen(seed);
  DepthCounts counts(height + 1, 0);
  for (std::uint64_t i = 0; i < draws; ++i) ++counts[dist.sample(gen)];
  return counts;
}

TEST(Gof, AcceptsOracleSamplesRejectsWrongPopulation) {
  const core::DepthDistribution theory(5000, 32);
  const auto own = sample_oracle(5000, 32, 4000, 7);
  EXPECT_FALSE(verify::chi_square_depth_gof(own, theory, 0.01).reject());
  EXPECT_FALSE(verify::ks_depth_gof(own, theory, 0.01).reject());

  // Double the population: the law shifts by one depth — gross.
  const auto wrong = sample_oracle(10000, 32, 4000, 7);
  EXPECT_TRUE(verify::chi_square_depth_gof(wrong, theory, 0.01).reject());
  EXPECT_TRUE(verify::ks_depth_gof(wrong, theory, 0.01).reject());
}

TEST(Gof, ChiSquareRejectsDegenerateHistograms) {
  const core::DepthDistribution theory(5000, 32);
  EXPECT_THROW((void)verify::chi_square_depth_gof(DepthCounts(33, 0), theory,
                                                  0.01),
               PreconditionError);
  // Histogram length must cover the full support [0, H].
  EXPECT_THROW((void)verify::chi_square_depth_gof(DepthCounts(4, 1), theory,
                                                  0.01),
               PreconditionError);
}

// --------------------------------------------------------- bench artifacts

TEST(BenchJson, RoundTripsReportWithEscapes) {
  runtime::BenchReport report("verify_test", 3);
  report.set_wall_seconds(1.25);
  report.add_row("Table \"X\"\nline2", {"col,a", "tab\tcol"},
                 {"1.5", "va\\lue"});
  const auto artifact = verify::parse_bench_json(report.to_json());
  EXPECT_EQ(artifact.target, "verify_test");
  EXPECT_EQ(artifact.threads, 3u);
  EXPECT_DOUBLE_EQ(artifact.wall_seconds, 1.25);
  ASSERT_EQ(artifact.rows.size(), 1u);
  const auto& row = artifact.rows[0];
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0].first, "table");
  EXPECT_EQ(row[0].second, "Table \"X\"\nline2");
  EXPECT_EQ(row[1].first, "col,a");
  EXPECT_EQ(row[2].first, "tab\tcol");
  EXPECT_EQ(row[2].second, "va\\lue");
}

TEST(BenchJson, NonFiniteWallSecondsSerializesAsNullAndParses) {
  EXPECT_EQ(runtime::json_number(std::nan(""), 3), "null");
  EXPECT_EQ(runtime::json_number(HUGE_VAL, 3), "null");
  EXPECT_EQ(runtime::json_number(1.0 / 3.0, 3), "0.333");

  runtime::BenchReport report("nan_case", 1);
  report.set_wall_seconds(std::nan(""));
  const auto artifact = verify::parse_bench_json(report.to_json());
  EXPECT_TRUE(std::isnan(artifact.wall_seconds));
}

TEST(BenchJson, ParserRejectsMalformedInput) {
  EXPECT_THROW((void)verify::parse_bench_json("{"), std::runtime_error);
  EXPECT_THROW((void)verify::parse_bench_json("{\"rows\": []}"),
               std::runtime_error);  // missing target
  EXPECT_THROW((void)verify::parse_bench_json(
                   "{\"target\": \"x\", \"rows\": []} trailing"),
               std::runtime_error);
  EXPECT_THROW((void)verify::parse_bench_json(
                   "{\"target\": \"x\", \"bogus\": 1, \"rows\": []}"),
               std::runtime_error);
}

verify::BenchArtifact tiny_artifact(const std::string& cell) {
  runtime::BenchReport report("t", 1);
  report.add_row("T", {"m", "value"}, {"64", cell});
  return verify::parse_bench_json(report.to_json());
}

TEST(BenchJson, DiffToleratesNumericDriftWithinBounds) {
  const auto golden = tiny_artifact("100.0");
  EXPECT_TRUE(verify::diff_bench(golden, tiny_artifact("104.9")).ok());
  EXPECT_FALSE(verify::diff_bench(golden, tiny_artifact("105.1")).ok());
  verify::BenchDiffOptions tight;
  tight.rtol = 0.0;
  tight.atol = 0.5;
  EXPECT_TRUE(verify::diff_bench(golden, tiny_artifact("100.4"), tight).ok());
  EXPECT_FALSE(verify::diff_bench(golden, tiny_artifact("100.6"), tight).ok());
}

TEST(BenchJson, DiffIsExactForNonNumericCells) {
  const auto golden = tiny_artifact("fast");
  EXPECT_TRUE(verify::diff_bench(golden, tiny_artifact("fast")).ok());
  EXPECT_FALSE(verify::diff_bench(golden, tiny_artifact("slow")).ok());
}

TEST(BenchJson, DiffCatchesStructuralDrift) {
  const auto golden = tiny_artifact("1");
  auto extra_rows = golden;
  extra_rows.rows.push_back(golden.rows[0]);
  EXPECT_FALSE(verify::diff_bench(golden, extra_rows).ok());

  auto renamed = golden;
  renamed.rows[0][1].first = "renamed";
  EXPECT_FALSE(verify::diff_bench(golden, renamed).ok());

  auto other_target = golden;
  other_target.target = "other";
  EXPECT_FALSE(verify::diff_bench(golden, other_target).ok());

  // threads / wall_seconds are run metadata, never compared.
  auto retimed = golden;
  retimed.threads = 99;
  retimed.wall_seconds = 1e9;
  EXPECT_TRUE(verify::diff_bench(golden, retimed).ok());
}

// ------------------------------------------------- determinism / sampling

TEST(DepthSampling, HistogramIsThreadCountInvariant) {
  verify::DepthSampleSpec spec;
  spec.backend = verify::DepthBackend::kDeviceRehash;
  spec.n = 64;
  spec.tree_height = 16;
  spec.trials = 24;
  spec.rounds_per_trial = 4;
  spec.seed = 11;
  // Arm every fault source: replay must still be trial-indexed.
  spec.impairments.reply_loss_prob = 0.2;
  spec.impairments.burst.p_good_to_bad = 0.1;
  spec.impairments.burst.p_bad_to_good = 0.3;
  spec.impairments.noise_transient.p_start = 0.1;
  spec.impairments.noise_transient.p_stop = 0.3;
  spec.impairments.noise_transient.noisy_false_busy_prob = 0.4;
  spec.impairments.script.outages.push_back(sim::ReaderOutage{5, 10});

  DepthCounts reference;
  for (const unsigned threads : {1u, 2u, 8u}) {
    runtime::TrialRunner runner(threads, false);
    const auto counts = verify::collect_depths(spec, runner);
    if (reference.empty()) {
      reference = counts;
    } else {
      EXPECT_EQ(counts, reference) << "threads=" << threads;
    }
  }
  std::uint64_t total = 0;
  for (const auto c : reference) total += c;
  EXPECT_EQ(total, spec.trials * spec.rounds_per_trial);
}

TEST(DepthSampling, PreloadedBackendsRequireOneRoundPerTrial) {
  verify::DepthSampleSpec spec;
  spec.backend = verify::DepthBackend::kSortedPreloaded;
  spec.n = 16;
  spec.trials = 2;
  spec.rounds_per_trial = 4;
  runtime::TrialRunner runner(1, false);
  EXPECT_THROW((void)verify::collect_depths(spec, runner), PreconditionError);
}

TEST(Calibration, ResultsAreThreadCountInvariant) {
  verify::CalibrationSpec spec;
  spec.n = 2000;
  spec.trials = 24;
  spec.rounds = 16;
  spec.seed = 5;
  runtime::TrialRunner serial(1, false);
  runtime::TrialRunner parallel(4, false);
  const auto a = verify::calibrate_pet(spec, serial);
  const auto b = verify::calibrate_pet(spec, parallel);
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.coverage, b.coverage);
  EXPECT_EQ(a.accuracy, b.accuracy);
  EXPECT_EQ(a.variance_ratio, b.variance_ratio);
}

// ------------------------------------------------------------ mutation hook

TEST(PhiBias, ScopedBiasScalesEstimatesAndRestores) {
  const double clean = core::estimate_from_mean_depth(10.0);
  EXPECT_NEAR(clean, std::exp2(10.0) / core::kPhi, 1e-9);
  {
    core::testing::ScopedPhiBias bias(2.0);
    EXPECT_NEAR(core::estimate_from_mean_depth(10.0), clean / 2.0, 1e-9);
  }
  EXPECT_NEAR(core::estimate_from_mean_depth(10.0), clean, 1e-9);
}

// ------------------------------------------------------------- registry

TEST(Conformance, RegistryNamesAreStable) {
  const auto names = verify::conformance_check_names();
  EXPECT_GE(names.size(), 16u);
  const std::vector<std::string> expected = {
      "theory/self-consistency", "gof/sampled-clean",
      "gof/device-outage-breaks", "calibration/pet", "calibration/ezb"};
  for (const auto& name : expected) {
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end())
        << name;
  }
}

TEST(Conformance, FilterSelectsSubsetAndTheoryPasses) {
  verify::ConformanceOptions options;
  options.quick = true;
  options.filter = "theory/";
  runtime::TrialRunner runner(1, false);
  const auto report = verify::run_conformance(options, runner);
  ASSERT_EQ(report.checks.size(), 1u);
  EXPECT_TRUE(report.checks[0].passed) << report.checks[0].detail;
  EXPECT_TRUE(report.all_passed());
  EXPECT_EQ(report.failures(), 0u);
}

}  // namespace
}  // namespace pet
