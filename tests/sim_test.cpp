// Unit tests for src/sim: the DES kernel, the slotted medium, and the tag
// device state machines.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/ensure.hpp"
#include "sim/devices.hpp"
#include "sim/medium.hpp"
#include "sim/simulator.hpp"

namespace pet::sim {
namespace {

TEST(Simulator, DispatchesInTimeOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.schedule_at(30, [&](Simulator&) { order.push_back(3); });
  simulator.schedule_at(10, [&](Simulator&) { order.push_back(1); });
  simulator.schedule_at(20, [&](Simulator&) { order.push_back(2); });
  EXPECT_EQ(simulator.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(simulator.now(), 30u);
}

TEST(Simulator, EqualTimestampsRunFifo) {
  Simulator simulator;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    simulator.schedule_at(7, [&order, i](Simulator&) { order.push_back(i); });
  }
  simulator.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, EventsMayScheduleMoreEvents) {
  Simulator simulator;
  int fired = 0;
  simulator.schedule_at(1, [&](Simulator& s) {
    ++fired;
    s.schedule_in(5, [&](Simulator&) { ++fired; });
  });
  EXPECT_EQ(simulator.run(), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(simulator.now(), 6u);
}

TEST(Simulator, RunUntilStopsEarly) {
  Simulator simulator;
  int fired = 0;
  simulator.schedule_at(10, [&](Simulator&) { ++fired; });
  simulator.schedule_at(20, [&](Simulator&) { ++fired; });
  EXPECT_EQ(simulator.run(15), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(simulator.pending(), 1u);
}

TEST(Simulator, RejectsPastScheduling) {
  Simulator simulator;
  simulator.advance(100);
  EXPECT_THROW(simulator.schedule_at(50, [](Simulator&) {}),
               PreconditionError);
}

/// A scripted responder for direct medium tests.
class ScriptedTag final : public Responder {
 public:
  explicit ScriptedTag(bool responds, TagId id = TagId{1})
      : responds_(responds), id_(id) {}
  std::optional<Reply> react(const Command&) override {
    if (!responds_) return std::nullopt;
    return Reply{id_, to_underlying(id_), 1};
  }

 private:
  bool responds_;
  TagId id_;
};

Command probe() { return PrefixQueryCmd{BitCode::parse("0"), 0, 8}; }

TEST(Medium, ClassifiesIdleSingletonCollision) {
  Simulator simulator;
  Medium medium;
  ScriptedTag silent(false);
  ScriptedTag loud1(true, TagId{1});
  ScriptedTag loud2(true, TagId{2});

  medium.attach(&silent);
  EXPECT_EQ(medium.run_slot(probe(), simulator).outcome, SlotOutcome::kIdle);

  medium.attach(&loud1);
  const auto single = medium.run_slot(probe(), simulator);
  EXPECT_EQ(single.outcome, SlotOutcome::kSingleton);
  ASSERT_TRUE(single.decoded.has_value());
  EXPECT_EQ(single.decoded->id, TagId{1});

  medium.attach(&loud2);
  EXPECT_EQ(medium.run_slot(probe(), simulator).outcome,
            SlotOutcome::kCollision);

  const auto& ledger = medium.ledger();
  EXPECT_EQ(ledger.idle_slots, 1u);
  EXPECT_EQ(ledger.singleton_slots, 1u);
  EXPECT_EQ(ledger.collision_slots, 1u);
  EXPECT_EQ(ledger.total_slots(), 3u);
  EXPECT_EQ(ledger.reader_bits, 24u);
  EXPECT_EQ(ledger.tag_bits, 3u);  // 1 + 2 presence bits heard
}

TEST(Medium, DetachSilencesTag) {
  Simulator simulator;
  Medium medium;
  ScriptedTag tag(true);
  medium.attach(&tag);
  EXPECT_EQ(medium.attached(), 1u);
  medium.detach(&tag);
  EXPECT_EQ(medium.attached(), 0u);
  EXPECT_EQ(medium.run_slot(probe(), simulator).outcome, SlotOutcome::kIdle);
}

TEST(Medium, AdvancesSimulationClockPerSlot) {
  Simulator simulator;
  Medium medium(ChannelImpairments{}, SlotTiming{250, 150});
  medium.run_slot(probe(), simulator);
  medium.run_slot(probe(), simulator);
  EXPECT_EQ(simulator.now(), 800u);
  EXPECT_EQ(medium.ledger().airtime_us, 800u);
}

TEST(Medium, ReplyLossCanEraseEverything) {
  Simulator simulator;
  Medium medium(ChannelImpairments{1.0, 0.0, 1});
  ScriptedTag tag(true);
  medium.attach(&tag);
  const auto obs = medium.run_slot(probe(), simulator);
  EXPECT_EQ(obs.outcome, SlotOutcome::kIdle) << "total loss yields idle";
  EXPECT_EQ(obs.responders, 1u) << "true transmitter count is still known";
}

TEST(Medium, FalseBusyNoiseFloorsIdleSlots) {
  Simulator simulator;
  Medium medium(ChannelImpairments{0.0, 1.0, 1});
  EXPECT_EQ(medium.run_slot(probe(), simulator).outcome,
            SlotOutcome::kCollision);
}

TEST(Medium, TotalReplyLossTurnsEveryBusySlotIdle) {
  Simulator simulator;
  Medium medium(ChannelImpairments{1.0, 0.0, 7});
  ScriptedTag a(true, TagId{1});
  ScriptedTag b(true, TagId{2});
  ScriptedTag c(true, TagId{3});
  medium.attach(&a);
  medium.attach(&b);
  medium.attach(&c);
  for (int slot = 0; slot < 5; ++slot) {
    const auto obs = medium.run_slot(probe(), simulator);
    EXPECT_EQ(obs.outcome, SlotOutcome::kIdle) << "slot " << slot;
    EXPECT_EQ(obs.responders, 3u);
    EXPECT_EQ(obs.erased_replies, 3u);
  }
  EXPECT_EQ(medium.ledger().idle_slots, 5u);
  EXPECT_EQ(medium.ledger().erased_replies, 15u);
}

TEST(Medium, CertainFalseBusyTurnsEveryIdleSlotBusy) {
  Simulator simulator;
  Medium medium(ChannelImpairments{0.0, 1.0, 7});
  ScriptedTag silent(false);
  medium.attach(&silent);
  for (int slot = 0; slot < 5; ++slot) {
    EXPECT_EQ(medium.run_slot(probe(), simulator).outcome,
              SlotOutcome::kCollision)
        << "slot " << slot;
  }
  EXPECT_EQ(medium.ledger().collision_slots, 5u);
  EXPECT_EQ(medium.ledger().noise_busy_slots, 5u);
}

TEST(Medium, RejectsOutOfRangeImpairments) {
  ChannelImpairments loss;
  loss.reply_loss_prob = 1.5;
  EXPECT_THROW(Medium{loss}, PreconditionError);

  ChannelImpairments noise;
  noise.false_busy_prob = -0.1;
  EXPECT_THROW(Medium{noise}, PreconditionError);

  ChannelImpairments burst;
  burst.burst.p_good_to_bad = 2.0;
  EXPECT_THROW(Medium{burst}, PreconditionError);

  ChannelImpairments transient;
  transient.noise_transient.noisy_false_busy_prob = 1.01;
  EXPECT_THROW(Medium{transient}, PreconditionError);

  ChannelImpairments script;
  script.script.outages.push_back(ReaderOutage{0, 0});
  EXPECT_THROW(Medium{script}, PreconditionError);
}

TEST(Medium, SameSeedReplaysIdentically) {
  ChannelImpairments impairments;
  impairments.reply_loss_prob = 0.3;
  impairments.false_busy_prob = 0.1;
  impairments.burst = GilbertElliottParams{0.05, 0.25, 0.0, 1.0, false};
  impairments.noise_transient = NoiseTransientParams{0.05, 0.5, 0.8, false};
  impairments.script.outages.push_back(ReaderOutage{40, 10});
  impairments.script.churn.push_back(ChurnEvent{60, 2, 0});
  impairments.script.churn.push_back(ChurnEvent{120, 0, 2});
  impairments.seed = 99;

  auto run = [&impairments] {
    Simulator simulator;
    Medium medium(impairments);
    ScriptedTag a(true, TagId{1});
    ScriptedTag b(true, TagId{2});
    ScriptedTag c(true, TagId{3});
    ScriptedTag silent(false);
    medium.attach(&a);
    medium.attach(&b);
    medium.attach(&c);
    medium.attach(&silent);
    std::vector<SlotOutcome> outcomes;
    for (int slot = 0; slot < 200; ++slot) {
      outcomes.push_back(medium.run_slot(probe(), simulator).outcome);
    }
    return std::make_pair(outcomes, medium.ledger());
  };

  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first.first, second.first) << "same seed, same outcome sequence";
  EXPECT_EQ(first.second, second.second) << "same seed, same ledger";
  // The scenario actually exercised the fault paths.
  EXPECT_GT(first.second.erased_replies, 0u);
  EXPECT_EQ(first.second.outage_slots, 10u);
}

TEST(Medium, GilbertElliottBadStateErasesBursts) {
  Simulator simulator;
  ChannelImpairments impairments;
  // Chain pinned in the bad state: starts bad, never recovers, loses all.
  impairments.burst = GilbertElliottParams{0.0, 0.0, 0.0, 1.0, true};
  impairments.seed = 3;
  Medium medium(impairments);
  ScriptedTag tag(true);
  medium.attach(&tag);
  for (int slot = 0; slot < 4; ++slot) {
    const auto obs = medium.run_slot(probe(), simulator);
    EXPECT_EQ(obs.outcome, SlotOutcome::kIdle);
    EXPECT_EQ(obs.erased_replies, 1u);
  }
  EXPECT_TRUE(medium.faults().in_burst());
  EXPECT_EQ(medium.ledger().erased_replies, 4u);
}

TEST(Medium, ScriptedOutageSilencesReaderThenRecovers) {
  Simulator simulator;
  ChannelImpairments impairments;
  impairments.script.outages.push_back(ReaderOutage{2, 2});
  Medium medium(impairments);
  ScriptedTag tag(true);
  medium.attach(&tag);

  const SlotOutcome expected[] = {SlotOutcome::kSingleton,
                                  SlotOutcome::kSingleton, SlotOutcome::kIdle,
                                  SlotOutcome::kIdle, SlotOutcome::kSingleton};
  for (int slot = 0; slot < 5; ++slot) {
    const auto obs = medium.run_slot(probe(), simulator);
    EXPECT_EQ(obs.outcome, expected[slot]) << "slot " << slot;
    EXPECT_EQ(obs.during_outage, slot == 2 || slot == 3);
  }
  EXPECT_EQ(medium.ledger().outage_slots, 2u);
  // The reader transmitted nothing during the outage: only 3 commands aired.
  EXPECT_EQ(medium.ledger().reader_bits, 3u * 8u);
}

TEST(Medium, ScriptedChurnDepartsAndReadmitsTags) {
  Simulator simulator;
  ChannelImpairments impairments;
  impairments.script.churn.push_back(ChurnEvent{1, 3, 0});
  impairments.script.churn.push_back(ChurnEvent{3, 0, 2});
  Medium medium(impairments);
  ScriptedTag a(true, TagId{1});
  ScriptedTag b(true, TagId{2});
  ScriptedTag c(true, TagId{3});
  medium.attach(&a);
  medium.attach(&b);
  medium.attach(&c);

  EXPECT_EQ(medium.run_slot(probe(), simulator).outcome,
            SlotOutcome::kCollision);
  EXPECT_EQ(medium.run_slot(probe(), simulator).outcome, SlotOutcome::kIdle)
      << "all three tags churned out at slot 1";
  EXPECT_EQ(medium.attached(), 0u);
  EXPECT_EQ(medium.departed(), 3u);
  EXPECT_EQ(medium.run_slot(probe(), simulator).outcome, SlotOutcome::kIdle);
  EXPECT_EQ(medium.run_slot(probe(), simulator).outcome,
            SlotOutcome::kCollision)
      << "two tags re-admitted at slot 3";
  EXPECT_EQ(medium.attached(), 2u);
  EXPECT_EQ(medium.departed(), 1u);
}

TEST(Medium, RetryAccountingTagsSlots) {
  Simulator simulator;
  Medium medium;
  medium.run_slot(probe(), simulator);
  medium.run_slot(probe(), simulator);
  medium.note_retries(1);
  EXPECT_EQ(medium.ledger().retry_slots, 1u);
  EXPECT_EQ(medium.ledger().total_slots(), 2u);
}

TEST(Medium, ObserverSeesEverySlot) {
  Simulator simulator;
  Medium medium;
  int observed = 0;
  medium.set_observer(
      [&](const Command&, const SlotObservation&) { ++observed; });
  medium.run_slot(probe(), simulator);
  medium.run_slot(probe(), simulator);
  EXPECT_EQ(observed, 2);
}

TEST(PetTagDevice, PreloadedRespondsExactlyOnPrefixMatch) {
  PetTagDevice tag(TagId{42}, rng::HashKind::kMix64, 32,
                   PetTagDevice::CodeMode::kPreloaded, 1);
  const BitCode code = tag.current_code();
  ASSERT_EQ(code.width(), 32u);

  // Matching prefix of every length must respond; flipping the last bit of
  // the prefix must silence it.
  for (unsigned len = 1; len <= 32; ++len) {
    const auto yes =
        tag.react(PrefixQueryCmd{code, len, 32});
    EXPECT_TRUE(yes.has_value()) << "len=" << len;
    const BitCode flipped(code.value() ^ (std::uint64_t{1} << (32 - len)), 32);
    const auto no = tag.react(PrefixQueryCmd{flipped, len, 32});
    EXPECT_FALSE(no.has_value()) << "len=" << len;
  }
}

TEST(PetTagDevice, PreloadedNeverHashesAtRuntime) {
  PetTagDevice tag(TagId{42}, rng::HashKind::kMix64, 32,
                   PetTagDevice::CodeMode::kPreloaded, 1);
  (void)tag.react(RoundBeginCmd{BitCode(0, 32), 7, false, 32});
  (void)tag.react(PrefixQueryCmd{BitCode(0, 32), 4, 32});
  EXPECT_EQ(tag.cost().hash_evaluations, 0u);
  EXPECT_EQ(tag.cost().prefix_compares, 1u);
}

TEST(PetTagDevice, PerRoundModeRehashesEachRound) {
  PetTagDevice tag(TagId{42}, rng::HashKind::kMix64, 32,
                   PetTagDevice::CodeMode::kPerRound);
  (void)tag.react(RoundBeginCmd{BitCode(0, 32), 7, true, 32});
  const BitCode first = tag.current_code();
  (void)tag.react(RoundBeginCmd{BitCode(0, 32), 8, true, 32});
  const BitCode second = tag.current_code();
  EXPECT_FALSE(first == second) << "new seed must yield a new code";
  EXPECT_EQ(tag.cost().hash_evaluations, 2u);
}

TEST(PetTagDevice, PerRoundModeRejectsPreloadedRounds) {
  PetTagDevice tag(TagId{42}, rng::HashKind::kMix64, 32,
                   PetTagDevice::CodeMode::kPerRound);
  EXPECT_THROW((void)tag.react(RoundBeginCmd{BitCode(0, 32), 7, false, 32}),
               PreconditionError);
}

TEST(PetTagDevice, IgnoresForeignCommands) {
  PetTagDevice tag(TagId{42}, rng::HashKind::kMix64, 32,
                   PetTagDevice::CodeMode::kPreloaded, 1);
  EXPECT_FALSE(tag.react(RangeQueryCmd{100, 32}).has_value());
  EXPECT_FALSE(tag.react(SlotPollCmd{1, 1}).has_value());
}

TEST(FnebTagDevice, RespondsIffSlotWithinBound) {
  FnebTagDevice tag(TagId{42}, rng::HashKind::kMix64);
  (void)tag.react(FrameBeginCmd{9, 1000, 1.0, 32});
  const std::uint64_t slot =
      rng::uniform_slot(rng::HashKind::kMix64, 9, TagId{42}, 1000);
  EXPECT_TRUE(tag.react(RangeQueryCmd{slot, 32}).has_value());
  EXPECT_TRUE(tag.react(RangeQueryCmd{1000, 32}).has_value());
  if (slot > 1) {
    EXPECT_FALSE(tag.react(RangeQueryCmd{slot - 1, 32}).has_value());
  }
}

TEST(LofTagDevice, RespondsExactlyAtItsLevel) {
  LofTagDevice tag(TagId{7}, rng::HashKind::kMix64);
  (void)tag.react(FrameBeginCmd{3, 32, 1.0, 32});
  const unsigned level =
      rng::geometric_level(rng::HashKind::kMix64, 3, TagId{7}, 32);
  for (std::uint64_t slot = 1; slot <= 32; ++slot) {
    EXPECT_EQ(tag.react(SlotPollCmd{slot, 1}).has_value(), slot == level);
  }
}

TEST(AlohaTagDevice, RetiresAfterAck) {
  AlohaTagDevice tag(TagId{5}, rng::HashKind::kMix64, /*transmit_id=*/true);
  (void)tag.react(FrameBeginCmd{1, 4, 1.0, 16});
  const std::uint64_t slot =
      rng::uniform_slot(rng::HashKind::kMix64, 1, TagId{5}, 4);
  const auto reply = tag.react(SlotPollCmd{slot, 1});
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->payload, 5u);
  EXPECT_EQ(reply->bits, 64u);
  (void)tag.react(AckCmd{5, 16});
  EXPECT_TRUE(tag.identified());
  (void)tag.react(FrameBeginCmd{2, 4, 1.0, 16});
  for (std::uint64_t s = 1; s <= 4; ++s) {
    EXPECT_FALSE(tag.react(SlotPollCmd{s, 1}).has_value())
        << "identified tags stay silent";
  }
}

TEST(TreeWalkTagDevice, AnswersMatchingIdPrefixes) {
  const TagId id{0b1010'0000'0000'0000'0000'0000'0000'0000'0000'0000'0000'0000'0000'0000'0000'0000ULL};
  TreeWalkTagDevice tag(id, rng::HashKind::kMix64);
  EXPECT_TRUE(tag.react(IdPrefixQueryCmd{BitCode{}, 64}).has_value());
  EXPECT_TRUE(tag.react(IdPrefixQueryCmd{BitCode::parse("1"), 64}).has_value());
  EXPECT_TRUE(
      tag.react(IdPrefixQueryCmd{BitCode::parse("10"), 64}).has_value());
  EXPECT_FALSE(
      tag.react(IdPrefixQueryCmd{BitCode::parse("11"), 64}).has_value());
  (void)tag.react(AckCmd{to_underlying(id), 16});
  EXPECT_FALSE(tag.react(IdPrefixQueryCmd{BitCode{}, 64}).has_value());
}

}  // namespace
}  // namespace pet::sim
