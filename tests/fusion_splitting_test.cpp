// Tests for the depth-fusion rules, the binary-splitting identification
// protocol, sketch serialization, and device-level multi-reader fusion.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "channel/device_channel.hpp"
#include "channel/sampled_channel.hpp"
#include "channel/sorted_pet_channel.hpp"
#include "common/ensure.hpp"
#include "core/constants.hpp"
#include "core/estimator.hpp"
#include "core/fusion.hpp"
#include "core/sketch.hpp"
#include "multireader/controller.hpp"
#include "protocols/identification.hpp"
#include "stats/running_stat.hpp"
#include "tags/population.hpp"

namespace pet {
namespace {

std::vector<TagId> make_tags(std::size_t n, std::uint64_t seed) {
  const auto pop = tags::TagPopulation::generate(n, seed);
  return {pop.ids().begin(), pop.ids().end()};
}

// ------------------------------------------------------------------- fusion

TEST(Fusion, GeometricMeanMatchesEq14) {
  const std::vector<unsigned> depths = {14, 15, 16, 17};
  const double expected = std::exp2(15.5) / core::kPhi;
  EXPECT_NEAR(core::fuse_depths(depths, core::FusionRule::kGeometricMean),
              expected, 1e-9);
}

TEST(Fusion, BiasFactorShrinksWithRounds) {
  EXPECT_GT(core::geometric_mean_bias(8), core::geometric_mean_bias(64));
  EXPECT_GT(core::geometric_mean_bias(64), core::geometric_mean_bias(4096));
  EXPECT_NEAR(core::geometric_mean_bias(1000000), 1.0, 1e-5);
  // Hand value at m = 64: exp((ln2 * 1.87271)^2 / 128) = exp(0.013166).
  EXPECT_NEAR(core::geometric_mean_bias(64), std::exp(0.013166), 1e-4);
}

TEST(Fusion, BiasCorrectedDividesOutTheFactor) {
  const std::vector<unsigned> depths(64, 16);
  const double gm = core::fuse_depths(depths, core::FusionRule::kGeometricMean);
  const double bc =
      core::fuse_depths(depths, core::FusionRule::kBiasCorrected);
  EXPECT_NEAR(bc, gm / core::geometric_mean_bias(64), 1e-9);
}

TEST(Fusion, BiasCorrectionCentersTheEstimator) {
  // Over many independent 64-round estimates, the geometric mean shows its
  // ~1.3% positive bias; the corrected rule removes most of it.
  const std::uint64_t n = 50000;
  chan::SampledChannel channel(n, 5);
  core::PetConfig plain;
  core::PetConfig corrected;
  corrected.fusion = core::FusionRule::kBiasCorrected;
  const stats::AccuracyRequirement req{0.2, 0.2};
  stats::RunningStat plain_acc;
  stats::RunningStat corrected_acc;
  for (std::uint64_t t = 0; t < 400; ++t) {
    plain_acc.add(core::PetEstimator(plain, req)
                      .estimate_with_rounds(channel, 64, t)
                      .n_hat /
                  static_cast<double>(n));
    corrected_acc.add(core::PetEstimator(corrected, req)
                          .estimate_with_rounds(channel, 64, 1000 + t)
                          .n_hat /
                      static_cast<double>(n));
  }
  // SE of the mean over 400 trials ~ 0.162/20 = 0.008.
  EXPECT_GT(plain_acc.mean(), 1.0) << "uncorrected bias is positive";
  EXPECT_LT(std::abs(corrected_acc.mean() - 1.0),
            std::abs(plain_acc.mean() - 1.0) + 0.005);
}

TEST(Fusion, MedianOfMeansIgnoresCorruptedRounds) {
  // 64 sane depths around 16 plus 8 jammed rounds reading the maximum
  // depth (e.g. a noise burst): the mean-based rules blow up, the
  // median-of-means barely moves.
  // The burst is contiguous (a jammer is on for a stretch of rounds), so
  // it lands in 2 of the 16 median-of-means groups.
  std::vector<unsigned> depths(64, 16);
  std::vector<unsigned> corrupted = depths;
  for (std::size_t i = 0; i < 8; ++i) corrupted[i] = 32;

  const double clean =
      core::fuse_depths(depths, core::FusionRule::kGeometricMean);
  const double mean_hit =
      core::fuse_depths(corrupted, core::FusionRule::kGeometricMean);
  const double mom_hit =
      core::fuse_depths(corrupted, core::FusionRule::kMedianOfMeans, 16);
  EXPECT_GT(mean_hit / clean, 2.0) << "mean fusion inflates ~2^2";
  EXPECT_LT(mom_hit / clean, 1.6) << "median-of-means absorbs the burst";
}

TEST(Fusion, MedianOfMeansHandlesDegenerateGroupCounts) {
  const std::vector<unsigned> depths = {10, 12, 14};
  // groups > size clamps; groups = 1 degenerates to the plain mean.
  EXPECT_NO_THROW((void)core::fuse_depths(
      depths, core::FusionRule::kMedianOfMeans, 100));
  EXPECT_NEAR(core::fuse_depths(depths, core::FusionRule::kMedianOfMeans, 1),
              core::fuse_depths(depths, core::FusionRule::kGeometricMean),
              1e-9);
}

TEST(Fusion, RejectsEmptyInput) {
  EXPECT_THROW((void)core::fuse_depths({}, core::FusionRule::kGeometricMean),
               PreconditionError);
}

TEST(Fusion, EstimatorHonorsConfiguredRule) {
  const auto tags = make_tags(5000, 6);
  chan::SortedPetChannel a(tags);
  chan::SortedPetChannel b(tags);
  core::PetConfig plain;
  core::PetConfig corrected;
  corrected.fusion = core::FusionRule::kBiasCorrected;
  const stats::AccuracyRequirement req{0.2, 0.2};
  const auto ra =
      core::PetEstimator(plain, req).estimate_with_rounds(a, 64, 7);
  const auto rb =
      core::PetEstimator(corrected, req).estimate_with_rounds(b, 64, 7);
  EXPECT_EQ(ra.depths, rb.depths);
  EXPECT_NEAR(rb.n_hat, ra.n_hat / core::geometric_mean_bias(64), 1e-9);
}

// ----------------------------------------------------------------- splitting

TEST(Splitting, DeviceProtocolIdentifiesEveryTag) {
  const auto tags = make_tags(400, 8);
  const auto result = proto::identify_splitting(tags, proto::SplittingConfig{},
                                                3);
  EXPECT_EQ(result.identified, 400u);
  // Contention-tree cost: ~2.89 slots/tag, loosely bounded here.
  EXPECT_GT(result.ledger.total_slots(), 2 * 400u);
  EXPECT_LT(result.ledger.total_slots(), 5 * 400u);
}

TEST(Splitting, SampledMatchesDeviceScaling) {
  const auto tags = make_tags(400, 9);
  const auto device =
      proto::identify_splitting(tags, proto::SplittingConfig{}, 4);
  const auto sampled =
      proto::identify_splitting_sampled(400, proto::SplittingConfig{}, 5);
  EXPECT_EQ(sampled.identified, 400u);
  const double a = static_cast<double>(device.ledger.total_slots());
  const double b = static_cast<double>(sampled.ledger.total_slots());
  EXPECT_LT(std::abs(a - b) / a, 0.2);
}

TEST(Splitting, MatchesTreeWalkConstantAtScale) {
  // Both contention trees visit ~2.885n nodes; splitting re-flips on empty
  // splits so it runs slightly above tree walking.
  const auto split =
      proto::identify_splitting_sampled(50000, proto::SplittingConfig{}, 6);
  const double per_tag =
      static_cast<double>(split.ledger.total_slots()) / 50000.0;
  EXPECT_NEAR(per_tag, 2.89, 0.25);
}

TEST(Splitting, HandlesTinyPopulations) {
  for (const std::size_t n : {0u, 1u, 2u, 3u}) {
    const auto tags = make_tags(n, 10 + n);
    const auto result =
        proto::identify_splitting(tags, proto::SplittingConfig{}, 7);
    EXPECT_EQ(result.identified, n) << "n=" << n;
  }
}

TEST(Splitting, SampledHandlesEmptyPopulation) {
  const auto result =
      proto::identify_splitting_sampled(0, proto::SplittingConfig{}, 8);
  EXPECT_EQ(result.identified, 0u);
  EXPECT_EQ(result.ledger.total_slots(), 1u);
}

// ---------------------------------------------------------- sketch wire form

TEST(SketchWire, RoundTripsExactly) {
  const auto tags = make_tags(3000, 11);
  chan::SortedPetChannel channel(tags);
  const auto original = core::PetSketch::take(channel, core::PetConfig{},
                                              333, 12);
  const auto bytes = original.serialize();
  EXPECT_EQ(bytes.size(), 13u + (333u * 6 + 7) / 8);
  const auto restored = core::PetSketch::deserialize(bytes);
  EXPECT_EQ(restored.seed(), original.seed());
  EXPECT_EQ(restored.tree_height(), original.tree_height());
  EXPECT_EQ(restored.depths(), original.depths());
  EXPECT_DOUBLE_EQ(restored.estimate(), original.estimate());
}

TEST(SketchWire, RejectsMalformedInput) {
  const auto tags = make_tags(100, 13);
  chan::SortedPetChannel channel(tags);
  const auto sketch = core::PetSketch::take(channel, core::PetConfig{}, 40,
                                            14);
  auto bytes = sketch.serialize();

  EXPECT_THROW((void)core::PetSketch::deserialize(
                   std::span<const std::uint8_t>(bytes.data(), 5)),
               ConfigError);

  auto truncated = bytes;
  truncated.pop_back();
  EXPECT_THROW((void)core::PetSketch::deserialize(truncated), ConfigError);

  auto bad_height = bytes;
  bad_height[8] = 1;
  EXPECT_THROW((void)core::PetSketch::deserialize(bad_height), ConfigError);
}

TEST(SketchWire, MergedSketchSurvivesTheWire) {
  const auto all = make_tags(6000, 15);
  const std::vector<TagId> left(all.begin(), all.begin() + 4000);
  const std::vector<TagId> right(all.begin() + 2000, all.end());
  chan::SortedPetChannel ca(left);
  chan::SortedPetChannel cb(right);
  const auto sa = core::PetSketch::take(ca, core::PetConfig{}, 500, 16);
  const auto sb = core::PetSketch::take(cb, core::PetConfig{}, 500, 16);
  // Ship both across "the network" and merge on the far side.
  const auto merged = core::PetSketch::merge_union(
      core::PetSketch::deserialize(sa.serialize()),
      core::PetSketch::deserialize(sb.serialize()));
  EXPECT_NEAR(merged.estimate(), 6000.0, 0.15 * 6000.0);
}

// ----------------------------------------------- device-level multi-reader

TEST(DeviceMultiReader, FusedDeviceChannelsEstimateCorrectly) {
  // Full-fidelity zones (real tag devices, real media) under the fused
  // controller: the whole stack composed together.
  const auto all = make_tags(1200, 17);
  const std::vector<TagId> zone_a(all.begin(), all.begin() + 500);
  const std::vector<TagId> zone_b(all.begin() + 400, all.begin() + 900);
  const std::vector<TagId> zone_c(all.begin() + 850, all.end());
  // Distinct tags = 1200 despite the overlaps.

  std::vector<std::unique_ptr<chan::PrefixChannel>> readers;
  readers.push_back(std::make_unique<chan::DeviceChannel>(
      zone_a, chan::DeviceKind::kPet));
  readers.push_back(std::make_unique<chan::DeviceChannel>(
      zone_b, chan::DeviceKind::kPet));
  readers.push_back(std::make_unique<chan::DeviceChannel>(
      zone_c, chan::DeviceKind::kPet));
  multi::MultiReaderController controller(std::move(readers));

  const core::PetEstimator estimator(core::PetConfig{}, {0.15, 0.1});
  const auto result = estimator.estimate_with_rounds(controller, 500, 18);
  EXPECT_NEAR(result.n_hat, 1200.0, 0.2 * 1200.0);
}

}  // namespace
}  // namespace pet
