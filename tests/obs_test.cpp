// Tests for pet::obs — metrics registry semantics, the determinism
// contract (byte-identical deterministic_json for any thread count),
// concurrent shard writes (ThreadSanitizer target), consistency between
// registry counters and the per-result ledgers they mirror, span/event
// tracing, and the BENCH artifact "metrics" member round trip.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "channel/device_channel.hpp"
#include "channel/sorted_pet_channel.hpp"
#include "core/estimator.hpp"
#include "core/robust_estimator.hpp"
#include "obs/export.hpp"
#include "obs/jsonlite.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/prom.hpp"
#include "obs/trace.hpp"
#include "rng/prng.hpp"
#include "runtime/json.hpp"
#include "runtime/trial_runner.hpp"
#include "stats/accuracy.hpp"
#include "tags/population.hpp"
#include "verify/benchjson.hpp"

namespace pet {
namespace {

/// Restores the prior level and clears the registry on scope exit, so the
/// global obs state never leaks between tests.
class ObsGuard {
 public:
  explicit ObsGuard(obs::Level level) : saved_(obs::level()) {
    obs::set_level(level);
    obs::MetricsRegistry::instance().reset();
  }
  ~ObsGuard() {
    obs::MetricsRegistry::instance().reset();
    obs::set_trace_writer(nullptr);
    obs::set_level(saved_);
  }

 private:
  obs::Level saved_;
};

TEST(ObsLevel, ParsesAndRoundTrips) {
  EXPECT_EQ(obs::parse_level("off"), obs::Level::kOff);
  EXPECT_EQ(obs::parse_level("counters"), obs::Level::kCounters);
  EXPECT_EQ(obs::parse_level("full"), obs::Level::kFull);
  EXPECT_EQ(obs::to_string(obs::Level::kCounters), "counters");
  EXPECT_THROW((void)obs::parse_level("verbose"), PreconditionError);
}

TEST(MetricsRegistry, RegistrationIsIdempotentByName) {
  ObsGuard guard(obs::Level::kCounters);
  if (!obs::counters_enabled()) GTEST_SKIP() << "obs compiled out";
  auto& registry = obs::MetricsRegistry::instance();
  const std::size_t before = registry.metric_count();
  const obs::Counter a = registry.counter("test.idem.counter");
  const obs::Counter b = registry.counter("test.idem.counter");
  EXPECT_EQ(registry.metric_count(), before + 1);
  a.add(3);
  b.add(4);
  EXPECT_EQ(registry.snapshot().counter("test.idem.counter"), 7u);
  // Same name, different kind: a registration bug, reported loudly.
  EXPECT_THROW((void)registry.gauge("test.idem.counter"),
               PreconditionError);
}

TEST(MetricsRegistry, HistogramBucketsByUpperBound) {
  ObsGuard guard(obs::Level::kCounters);
  if (!obs::counters_enabled()) GTEST_SKIP() << "obs compiled out";
  auto& registry = obs::MetricsRegistry::instance();
  const obs::Histogram h =
      registry.histogram("test.hist", {1.0, 2.0, 4.0});
  h.observe(0.5);  // bucket 0 (<= 1)
  h.observe(1.0);  // bucket 0
  h.observe(3.0);  // bucket 2 (<= 4)
  h.observe(9.0);  // overflow bucket
  const obs::Snapshot snapshot = registry.snapshot();
  const auto* value = snapshot.histogram("test.hist");
  ASSERT_NE(value, nullptr);
  ASSERT_EQ(value->counts.size(), 4u);
  EXPECT_EQ(value->counts[0], 2u);
  EXPECT_EQ(value->counts[1], 0u);
  EXPECT_EQ(value->counts[2], 1u);
  EXPECT_EQ(value->counts[3], 1u);
  EXPECT_EQ(value->total(), 4u);
}

TEST(MetricsRegistry, OffLevelRecordsNothing) {
  ObsGuard guard(obs::Level::kCounters);
  if (!obs::counters_enabled()) GTEST_SKIP() << "obs compiled out";
  auto& registry = obs::MetricsRegistry::instance();
  const obs::Counter c = registry.counter("test.off.counter");
  obs::set_level(obs::Level::kOff);
  // Instrumentation sites guard on counters_enabled(); replicate that
  // contract here — the level is the only gate the hot path checks.
  if (obs::counters_enabled()) c.add();
  obs::set_level(obs::Level::kCounters);
  EXPECT_EQ(registry.snapshot().counter("test.off.counter"), 0u);
}

TEST(MetricsRegistry, ConcurrentShardWritesMergeExactly) {
  // The ThreadSanitizer target for the registry: many threads hammering
  // the same counters through thread-local shards, snapshot folding
  // concurrently.  The final merged total must be exact.
  ObsGuard guard(obs::Level::kCounters);
  if (!obs::counters_enabled()) GTEST_SKIP() << "obs compiled out";
  auto& registry = obs::MetricsRegistry::instance();
  const obs::Counter counter = registry.counter("test.concurrent.counter");
  const obs::Histogram hist =
      registry.histogram("test.concurrent.hist", {10.0, 100.0});

  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 5000;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {}
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counter.add();
        hist.observe(static_cast<double>((t * kPerThread + i) % 200));
      }
    });
  }
  go.store(true, std::memory_order_release);
  // Concurrent snapshots must be safe (values may be mid-flight).
  (void)registry.snapshot();
  for (auto& thread : threads) thread.join();

  const obs::Snapshot snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counter("test.concurrent.counter"),
            kThreads * kPerThread);
  const auto* h = snapshot.histogram("test.concurrent.hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->total(), kThreads * kPerThread);
}

/// One instrumented estimation trial (the same work a bench sweep runs).
core::EstimateResult pet_trial(const std::vector<TagId>& ids,
                               const core::PetEstimator& estimator,
                               std::uint64_t seed, std::uint64_t run) {
  chan::SortedPetChannelConfig config;
  config.manufacturing_seed = rng::derive_seed(seed, 2 * run);
  chan::SortedPetChannel channel(ids, config);
  return estimator.estimate_with_rounds(channel, 64,
                                        rng::derive_seed(seed, 2 * run + 1));
}

TEST(MetricsDeterminism, DeterministicJsonIsThreadCountInvariant) {
  ObsGuard guard(obs::Level::kCounters);
  if (!obs::counters_enabled()) GTEST_SKIP() << "obs compiled out";
  const auto pop = tags::TagPopulation::generate(300, 0xfeedULL);
  const std::vector<TagId> ids(pop.ids().begin(), pop.ids().end());
  const core::PetEstimator estimator(core::PetConfig{},
                                     stats::AccuracyRequirement{0.1, 0.1});

  std::vector<std::string> renders;
  for (const unsigned threads : {1u, 2u, 8u}) {
    obs::MetricsRegistry::instance().reset();
    runtime::TrialRunner runner(threads);
    double sum = 0.0;
    runner.run<core::EstimateResult>(
        12,
        [&](std::uint64_t run) { return pet_trial(ids, estimator, 42, run); },
        [&](std::uint64_t, core::EstimateResult&& result) {
          sum += result.n_hat;
        });
    EXPECT_GT(sum, 0.0);
    renders.push_back(
        obs::deterministic_json(obs::MetricsRegistry::instance().snapshot()));
  }
  ASSERT_EQ(renders.size(), 3u);
  // Byte-identical, not merely numerically equal: the acceptance criterion.
  EXPECT_EQ(renders[0], renders[1]);
  EXPECT_EQ(renders[0], renders[2]);
  EXPECT_NE(renders[0].find("chan.ledger.idle_slots"), std::string::npos);
}

TEST(MetricsConsistency, LedgerMirrorsMatchTheResultLedger) {
  ObsGuard guard(obs::Level::kCounters);
  if (!obs::counters_enabled()) GTEST_SKIP() << "obs compiled out";
  const auto pop = tags::TagPopulation::generate(500, 3);
  const core::PetEstimator estimator(core::PetConfig{},
                                     stats::AccuracyRequirement{0.1, 0.1});
  chan::DeviceChannel channel(pop.ids(), chan::DeviceKind::kPet, {});
  const core::EstimateResult result =
      estimator.estimate_with_rounds(channel, 128, 7);

  const obs::Snapshot snapshot = obs::MetricsRegistry::instance().snapshot();
  EXPECT_EQ(snapshot.counter("chan.ledger.idle_slots"),
            result.ledger.idle_slots);
  EXPECT_EQ(snapshot.counter("chan.ledger.singleton_slots"),
            result.ledger.singleton_slots);
  EXPECT_EQ(snapshot.counter("chan.ledger.collision_slots"),
            result.ledger.collision_slots);
  EXPECT_EQ(snapshot.counter("chan.ledger.reader_bits"),
            result.ledger.reader_bits);
  EXPECT_EQ(snapshot.counter("chan.ledger.tag_bits"), result.ledger.tag_bits);
  // The sim.slot.* view counts the same slots from the Medium's side.
  EXPECT_EQ(snapshot.counter("sim.slot.idle"), result.ledger.idle_slots);
  EXPECT_EQ(snapshot.counter("sim.slot.singleton") +
                snapshot.counter("sim.slot.collision"),
            result.ledger.singleton_slots + result.ledger.collision_slots);
  const auto* responders = snapshot.histogram("sim.slot.responders");
  ASSERT_NE(responders, nullptr);
  EXPECT_EQ(responders->total(), result.ledger.total_slots());
}

TEST(MetricsConsistency, RobustCountersMatchTheResultFields) {
  ObsGuard guard(obs::Level::kCounters);
  if (!obs::counters_enabled()) GTEST_SKIP() << "obs compiled out";
  const auto pop = tags::TagPopulation::generate(400, 11);
  core::RobustPetConfig config;
  chan::DeviceChannelConfig device;
  device.impairments.reply_loss_prob = 0.05;
  device.impairments.seed = 99;
  chan::DeviceChannel channel(pop.ids(), chan::DeviceKind::kPet, device);
  const core::RobustPetEstimator estimator(
      config, stats::AccuracyRequirement{0.1, 0.1});
  const core::RobustEstimateResult result = estimator.estimate(channel, 5);

  const obs::Snapshot snapshot = obs::MetricsRegistry::instance().snapshot();
  EXPECT_EQ(snapshot.counter("core.robust.estimates"), 1u);
  EXPECT_EQ(snapshot.counter("core.robust.reread_slots"),
            result.reread_slots);
  EXPECT_EQ(snapshot.counter("core.robust.overturned_probes"),
            result.overturned_probes);
  EXPECT_EQ(snapshot.counter("core.robust.health.healthy") +
                snapshot.counter("core.robust.health.degraded") +
                snapshot.counter("core.robust.health.at_risk"),
            1u);
  EXPECT_EQ(snapshot.counter("chan.ledger.retry_slots"),
            result.reread_slots);
}

TEST(Tracing, SpansAndEventsEmitSchemaStableJsonl) {
  ObsGuard guard(obs::Level::kFull);
  if (!obs::full_enabled()) GTEST_SKIP() << "obs compiled out";
  std::ostringstream out;
  obs::TraceWriter writer(out);
  obs::set_trace_writer(&writer);
  obs::set_trace_trial(7);

  obs::trace_event("unit.event",
                   {{"text", obs::json_token("quote\"and\nnewline")},
                    {"value", "42"}});
  {
    obs::ScopedSpan span("unit.span");
    obs::advance_trace_slot();
    obs::advance_trace_slot();
    span.add("rounds", "2");
  }
  obs::set_trace_writer(nullptr);

  const std::string text = out.str();
  EXPECT_NE(text.find("{\"type\":\"event\",\"name\":\"unit.event\","
                      "\"trial\":7,\"slot\":0,"
                      "\"text\":\"quote\\\"and\\nnewline\",\"value\":42}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("{\"type\":\"span\",\"name\":\"unit.span\","
                      "\"trial\":7,\"slot_begin\":0,\"slot_end\":2,"
                      "\"rounds\":2}"),
            std::string::npos)
      << text;
  // Every record is one complete line.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
}

TEST(Tracing, NothingIsWrittenBelowFullLevel) {
  ObsGuard guard(obs::Level::kCounters);
  std::ostringstream out;
  obs::TraceWriter writer(out);
  obs::set_trace_writer(&writer);
  obs::trace_event("unit.silent", {});
  { obs::ScopedSpan span("unit.silent.span"); }
  obs::set_trace_writer(nullptr);
  EXPECT_TRUE(out.str().empty());
}

TEST(MetricsExport, DocumentParsesAndSeparatesDomains) {
  ObsGuard guard(obs::Level::kCounters);
  if (!obs::counters_enabled()) GTEST_SKIP() << "obs compiled out";
  auto& registry = obs::MetricsRegistry::instance();
  registry.counter("test.export.det").add(5);
  registry.counter("test.export.prof", obs::Domain::kProfile).add(9);
  registry.gauge("test.export.gauge").set(1.25);

  obs::PhaseProfiler profiler;
  {
    obs::PhaseProfiler::Scope scope(profiler, "unit-phase");
    scope.add_slots(1000);
  }
  obs::PoolSample pool;
  pool.threads = 2;
  pool.submitted = 10;
  pool.worker_tasks = {6, 4};

  const std::string document =
      obs::metrics_json(registry.snapshot(), profiler.phases(), pool);
  const obs::JsonValue root = obs::parse_json(document);
  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root.find("schema")->string, "pet.obs.v1");
  EXPECT_EQ(root.find("level")->string, "counters");
  // Deterministic sections carry only deterministic-domain metrics.
  const obs::JsonValue* counters = root.find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->find("test.export.det"), nullptr);
  EXPECT_EQ(counters->find("test.export.det")->number, 5.0);
  EXPECT_EQ(counters->find("test.export.prof"), nullptr);
  EXPECT_EQ(root.find("gauges")->find("test.export.gauge")->number, 1.25);
  // The profile section owns the rest.
  const obs::JsonValue* profile = root.find("profile");
  ASSERT_NE(profile, nullptr);
  ASSERT_NE(profile->find("counters"), nullptr);
  EXPECT_EQ(profile->find("counters")->find("test.export.prof")->number, 9.0);
  const obs::JsonValue* phases = profile->find("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_TRUE(phases->is_array());
  ASSERT_EQ(phases->array.size(), 1u);
  EXPECT_EQ(phases->array[0].find("name")->string, "unit-phase");
  EXPECT_EQ(phases->array[0].find("slots")->number, 1000.0);
  EXPECT_EQ(profile->find("pool")->find("threads")->number, 2.0);
}

TEST(MetricsExport, ExtraMembersLandAtTopLevel) {
  // The kMetrics wire command rides its "service" member in through this
  // hook; the fragment must append verbatim after "profile".
  ObsGuard guard(obs::Level::kCounters);
  if (!obs::counters_enabled()) GTEST_SKIP() << "obs compiled out";
  auto& registry = obs::MetricsRegistry::instance();
  registry.counter("test.extra.det").add(1);

  const std::string document =
      obs::metrics_json(registry.snapshot(), {}, std::nullopt,
                        "\"service\":{\"totals\":{\"requests\":3}}");
  const obs::JsonValue root = obs::parse_json(document);
  ASSERT_TRUE(root.is_object());
  const obs::JsonValue* service = root.find("service");
  ASSERT_NE(service, nullptr);
  const obs::JsonValue* totals = service->find("totals");
  ASSERT_NE(totals, nullptr);
  EXPECT_EQ(totals->find("requests")->number, 3.0);
  // Default (no extra member) keeps the historical document shape.
  EXPECT_EQ(obs::parse_json(obs::metrics_json(registry.snapshot()))
                .find("service"),
            nullptr);
}

TEST(Prometheus, TextExpositionRendersCountersGaugesHistograms) {
  ObsGuard guard(obs::Level::kCounters);
  if (!obs::counters_enabled()) GTEST_SKIP() << "obs compiled out";
  auto& registry = obs::MetricsRegistry::instance();
  registry.counter("test.prom.det").add(4);
  registry.counter("pet.svc.pop.requests").add(7);
  registry.counter("test.prom.prof", obs::Domain::kProfile).add(2);
  registry.gauge("test.prom.gauge").set(0.5);
  auto hist = registry.histogram("test.prom.lat", {1.0, 10.0});
  hist.observe(0.5);
  hist.observe(5.0);
  hist.observe(100.0);

  const std::string text = obs::prometheus_text(registry.snapshot());
  // Name mangling: dots to underscores, "pet_" prepended except for names
  // already in the pet. family.
  EXPECT_NE(text.find("# TYPE pet_test_prom_det counter"), std::string::npos)
      << text;
  EXPECT_NE(text.find("pet_test_prom_det 4"), std::string::npos);
  EXPECT_NE(text.find("pet_svc_pop_requests 7"), std::string::npos);
  EXPECT_EQ(text.find("pet_pet_svc"), std::string::npos)
      << "pet. names must not be double-prefixed";
  // Profile-domain counters export too (Prometheus has no domain split).
  EXPECT_NE(text.find("pet_test_prom_prof 2"), std::string::npos);
  EXPECT_NE(text.find("pet_test_prom_gauge 0.500000"), std::string::npos);
  // Cumulative buckets plus +Inf plus _count, no _sum.
  EXPECT_NE(text.find("pet_test_prom_lat_bucket{le=\"1.000000\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("pet_test_prom_lat_bucket{le=\"10.000000\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("pet_test_prom_lat_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("pet_test_prom_lat_count 3"), std::string::npos);
  EXPECT_EQ(text.find("pet_test_prom_lat_sum"), std::string::npos);
}

TEST(Prometheus, AtomicFileWriteLandsCompleteAndTmpIsGone) {
  ObsGuard guard(obs::Level::kCounters);
  if (!obs::counters_enabled()) GTEST_SKIP() << "obs compiled out";
  obs::MetricsRegistry::instance().counter("test.prom.file").add(1);
  const std::string text =
      obs::prometheus_text(obs::MetricsRegistry::instance().snapshot());
  const std::string path =
      testing::TempDir() + "obs_prom_atomic_test.prom";
  obs::write_prometheus_file_atomic(path, text);

  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::ostringstream buffer;
  buffer << file.rdbuf();
  EXPECT_EQ(buffer.str(), text);
  EXPECT_FALSE(std::ifstream(path + ".tmp").good())
      << "tmp staging file must be renamed away";
  std::remove(path.c_str());
}

TEST(BenchMetrics, ArtifactRoundTripsAndDiffIgnoresMetrics) {
  runtime::BenchReport with_metrics("unit_bench", 4);
  with_metrics.add_row("t", {"col"}, {"1.5"});
  with_metrics.set_metrics_json(
      "{\"schema\": \"pet.obs.v1\", \"counters\": {\"a\": 1}}");
  runtime::BenchReport without_metrics("unit_bench", 4);
  without_metrics.add_row("t", {"col"}, {"1.5"});

  const verify::BenchArtifact parsed =
      verify::parse_bench_json(with_metrics.to_json());
  EXPECT_EQ(parsed.target, "unit_bench");
  EXPECT_NE(parsed.metrics_json.find("pet.obs.v1"), std::string::npos);
  ASSERT_EQ(parsed.rows.size(), 1u);

  // A golden written before observability existed must still gate a
  // metrics-carrying candidate (and vice versa): the member is invisible
  // to the diff.
  const verify::BenchArtifact old_golden =
      verify::parse_bench_json(without_metrics.to_json());
  EXPECT_TRUE(verify::diff_bench(old_golden, parsed).ok());
  EXPECT_TRUE(verify::diff_bench(parsed, old_golden).ok());
  // The deterministic rows stay byte-identical with metrics attached.
  EXPECT_EQ(with_metrics.rows_json(), without_metrics.rows_json());
}

}  // namespace
}  // namespace pet
