// Tests for the bench harness library: option parsing, table rendering and
// the experiment drivers that every table/figure binary relies on.
#include <gtest/gtest.h>

#include <cmath>

#include "core/estimator.hpp"
#include "harness/experiment.hpp"
#include "harness/options.hpp"
#include "harness/table.hpp"

namespace pet::bench {
namespace {

BenchOptions parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "bench");
  return BenchOptions::parse(static_cast<int>(argv.size()),
                             const_cast<char**>(argv.data()), "test");
}

TEST(Options, Defaults) {
  const auto options = parse({});
  EXPECT_EQ(options.runs, 300u);
  EXPECT_FALSE(options.csv);
  EXPECT_EQ(options.seed, 1u);
}

TEST(Options, ParsesEveryFlag) {
  const auto options = parse({"--runs=42", "--csv", "--seed=9"});
  EXPECT_EQ(options.runs, 42u);
  EXPECT_TRUE(options.csv);
  EXPECT_EQ(options.seed, 9u);
}

TEST(Options, QuickShrinksRuns) {
  EXPECT_EQ(parse({"--quick"}).runs, 30u);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::num(3.14159, 0), "3");
  EXPECT_EQ(TablePrinter::num(std::uint64_t{123456}), "123456");
}

TEST(Table, RejectsMismatchedRows) {
  TablePrinter table("t", {"a", "b"});
  EXPECT_THROW(table.add_row({"only one"}), PreconditionError);
  EXPECT_NO_THROW(table.add_row({"1", "2"}));
}

TEST(Experiment, PetTrialSetMatchesPlan) {
  const stats::AccuracyRequirement req{0.2, 0.2};
  const core::PetEstimator planner(core::PetConfig{}, req);
  const auto set = run_pet(5000, core::PetConfig{}, req, 0, 10, 1);
  EXPECT_EQ(set.summary.trials(), 10u);
  EXPECT_NEAR(set.mean_slots_per_estimate,
              static_cast<double>(planner.planned_rounds() * 5), 1e-6);
  EXPECT_NEAR(set.summary.accuracy(), 1.0, 0.25);
}

TEST(Experiment, RoundsOverrideIsHonored) {
  const auto set = run_pet(5000, core::PetConfig{}, {0.2, 0.2}, 64, 10, 1);
  EXPECT_NEAR(set.mean_slots_per_estimate, 320.0, 1e-6);
}

TEST(Experiment, RunsAreSeedDeterministic) {
  const auto a = run_pet(3000, core::PetConfig{}, {0.2, 0.2}, 32, 5, 77);
  const auto b = run_pet(3000, core::PetConfig{}, {0.2, 0.2}, 32, 5, 77);
  const auto c = run_pet(3000, core::PetConfig{}, {0.2, 0.2}, 32, 5, 78);
  EXPECT_EQ(a.summary.raw_estimates(), b.summary.raw_estimates());
  EXPECT_NE(a.summary.raw_estimates(), c.summary.raw_estimates());
}

TEST(Experiment, BaselineDriversProduceSaneEstimates) {
  const stats::AccuracyRequirement req{0.15, 0.1};
  const auto fneb = run_fneb(8000, proto::FnebConfig{}, req, 0, 10, 2);
  EXPECT_NEAR(fneb.summary.accuracy(), 1.0, 0.15);
  const auto lof = run_lof(8000, proto::LofConfig{}, req, 0, 10, 3);
  EXPECT_NEAR(lof.summary.accuracy(), 1.0, 0.15);
  proto::UpeConfig upe_config;
  upe_config.expected_n = 8000.0;
  const auto upe = run_upe(8000, upe_config, req, 10, 4);
  EXPECT_NEAR(upe.summary.accuracy(), 1.0, 0.15);
  const auto ezb = run_ezb(8000, proto::EzbConfig{}, req, 10, 5);
  EXPECT_NEAR(ezb.summary.accuracy(), 1.0, 0.2);
}

TEST(Experiment, SlotAccountingOrdersProtocolsLikeThePaper) {
  const stats::AccuracyRequirement req{0.05, 0.01};
  const auto pet = run_pet(20000, core::PetConfig{}, req, 0, 5, 6);
  const auto fneb = run_fneb(20000, proto::FnebConfig{}, req, 0, 5, 7);
  const auto lof = run_lof(20000, proto::LofConfig{}, req, 0, 5, 8);
  EXPECT_LT(pet.mean_slots_per_estimate, 0.5 * fneb.mean_slots_per_estimate);
  EXPECT_LT(pet.mean_slots_per_estimate, 0.5 * lof.mean_slots_per_estimate);
}

}  // namespace
}  // namespace pet::bench
