// Tests for the Deployment façade and the Eq. (6) theory cross-check.
#include <gtest/gtest.h>

#include <cmath>

#include "common/ensure.hpp"
#include "core/sketch.hpp"
#include "core/theory.hpp"
#include "multireader/deployment.hpp"

namespace pet::multi {
namespace {

TEST(TheoryEq6, MatchesExactMeanViaHeightIdentity) {
  // Eq. (6) computes E(h); the exact pmf computes E(d); h = H - d.
  for (const std::uint64_t n : {1000ull, 50000ull, 1000000ull}) {
    for (const unsigned h : {32u, 48u}) {
      const core::DepthDistribution dist(n, h);
      const double via_eq6 = core::expected_gray_height_eq6(n, h);
      const double via_pmf = static_cast<double>(h) - dist.mean();
      EXPECT_NEAR(via_eq6, via_pmf, 0.02) << "n=" << n << " H=" << h;
    }
  }
}

TEST(TheoryEq6, AgreesWithMellinAsymptotics) {
  // Eq. (9): E(h) ~= H - log2(phi n).
  const double eq6 = core::expected_gray_height_eq6(50000, 32);
  const double eq9 = 32.0 - core::asymptotic_mean_depth(50000.0);
  EXPECT_NEAR(eq6, eq9, 0.02);
}

TEST(TheoryEq8, PeriodicWobbleIsTiny) {
  // Eq. (8)'s P(log2 n) term has amplitude ~1e-5; together with the
  // O(1/sqrt n) remainder, E(d) - log2(phi n) stays far below a millibit
  // over a decade of n.
  for (std::uint64_t n = 100000; n <= 1000000; n += 90000) {
    const core::DepthDistribution dist(n, 48);
    const double wobble =
        dist.mean() - core::asymptotic_mean_depth(static_cast<double>(n));
    EXPECT_LT(std::abs(wobble), 5e-3) << "n=" << n;
  }
}

TEST(Deployment, ValidatesConfig) {
  DeploymentConfig config;
  config.readers = 0;
  EXPECT_THROW(Deployment(config, 10), PreconditionError);
  config = DeploymentConfig{};
  config.pet.tags_rehash = true;
  EXPECT_THROW(Deployment(config, 10), PreconditionError);
}

TEST(Deployment, CensusMeetsItsContract) {
  DeploymentConfig config;
  config.readers = 4;
  config.coverage_overlap = 0.25;
  config.accuracy = {0.10, 0.05};
  Deployment site(config, 15000);
  const Census census = site.census();
  EXPECT_NEAR(census.estimate, 15000.0, 0.12 * 15000.0);
  EXPECT_TRUE(census.interval.contains(census.estimate));
  EXPECT_GT(census.cost.total_slots(), 0u);
  EXPECT_EQ(census.cost.total_slots(), census.rounds * 5);
}

TEST(Deployment, DynamicsAreReflectedInCensuses) {
  DeploymentConfig config;
  config.readers = 2;
  config.accuracy = {0.10, 0.05};
  Deployment site(config, 5000);

  EXPECT_NEAR(site.census().estimate, 5000.0, 800.0);
  site.add_tags(10000);
  EXPECT_EQ(site.true_count(), 15000u);
  EXPECT_NEAR(site.census().estimate, 15000.0, 2000.0);
  EXPECT_EQ(site.remove_tags(12000), 12000u);
  EXPECT_NEAR(site.census().estimate, 3000.0, 500.0);
}

TEST(Deployment, ShuffleKeepsCountStable) {
  DeploymentConfig config;
  config.readers = 6;
  config.accuracy = {0.10, 0.05};
  Deployment site(config, 9000);
  const double before = site.census().estimate;
  const std::size_t moved = site.shuffle_tags(0.5);
  EXPECT_GT(moved, 3000u);
  const double after = site.census().estimate;
  EXPECT_NEAR(before, after, 0.15 * 9000.0);
}

TEST(Deployment, CheapCensusUsesTheRequestedBudget) {
  DeploymentConfig config;
  Deployment site(config, 2000);
  const Census census = site.census_with_rounds(64);
  EXPECT_EQ(census.rounds, 64u);
  EXPECT_EQ(census.cost.total_slots(), 320u);
  EXPECT_NEAR(census.estimate, 2000.0, 0.5 * 2000.0)
      << "64 rounds gives a coarse but sane figure";
}

TEST(Deployment, CrossSiteSketchesMerge) {
  // Two warehouses, same code universe, same sketch seed: headquarters
  // merges their sketches into a fleet-wide distinct count.
  // The sites hold different tags, but both use the default manufacturing
  // scheme (same hash, same manufacturing seed) — the shared code universe
  // that union-merging requires.
  DeploymentConfig config;
  config.seed = 42;
  Deployment east(config, 8000);
  DeploymentConfig west_config;
  west_config.seed = 43;  // different tags
  Deployment west(west_config, 5000);

  const auto sa = east.sketch(1500, 7);
  const auto sb = west.sketch(1500, 7);
  ASSERT_TRUE(sa.mergeable_with(sb));
  const auto fleet = core::PetSketch::merge_union(sa, sb);
  // Disjoint populations: the union is the sum.
  EXPECT_NEAR(fleet.estimate(), 13000.0, 0.15 * 13000.0);
}

}  // namespace
}  // namespace pet::multi
